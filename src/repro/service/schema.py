"""Wire format for the sweep service: JSON requests, exact array payloads.

Requests are flat JSON objects with a ``kind`` discriminator; results
are named ``np.ndarray`` mappings — the same shape the analysis layer's
curve objects serialize to, and the same values the content-addressed
cache stores.  Arrays travel as raw little-endian bytes (base64) plus
dtype and shape, so every float crosses the wire bit for bit: the
service's byte-identical-to-offline contract rests on this encoding,
not on decimal formatting.

Machines and stencils are referenced *by catalog name*.  The server
resolves them against the same :data:`repro.machines.catalog.DEFAULT_MACHINES`
and stencil library the CLI uses, so a request names exactly what the
offline command line can name — nothing arbitrary is unpickled from
the network.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Mapping

import numpy as np

from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.catalog import DEFAULT_MACHINES
from repro.stencils.library import Stencil
from repro.stencils.library import by_name as stencil_by_name
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "encode_arrays",
    "decode_arrays",
    "json_body",
    "error_body",
    "allocation_payload",
    "plan_payload",
    "sweep_payload",
    "sim_sweep_payload",
    "sim_validate_payload",
    "parse_allocation",
    "parse_plan",
    "parse_sweep",
    "parse_sim_sweep",
    "parse_sim_validate",
]


# --------------------------------------------------------------------------
# Exact ndarray <-> JSON
# --------------------------------------------------------------------------


def encode_arrays(arrays: Mapping[str, np.ndarray]) -> dict[str, Any]:
    """Named arrays as JSON-safe dicts with bit-exact contents."""
    out: dict[str, Any] = {}
    for name, array in arrays.items():
        data = np.ascontiguousarray(array)
        out[name] = {
            "dtype": data.dtype.str,
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }
    return out


def decode_arrays(payload: Mapping[str, Any]) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode_arrays`; arrays come back writable copies."""
    out: dict[str, np.ndarray] = {}
    for name, spec in payload.items():
        raw = base64.b64decode(spec["data"])
        array = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
        out[name] = array.reshape(tuple(spec["shape"])).copy()
    return out


# --------------------------------------------------------------------------
# Response envelopes (server side, shared by both backends)
# --------------------------------------------------------------------------


def json_body(payload: Mapping[str, Any]) -> bytes:
    """One JSON response body, canonically serialized.

    Both server backends build every JSON response through this one
    function, so for the same payload their bodies are byte-identical —
    the cross-backend parity suite rests on it.
    """
    return json.dumps(payload).encode("utf-8")


def error_body(message: str, status: str = "error") -> bytes:
    """The service's error envelope: ``{"status": "error", "error": …}``."""
    return json_body({"status": status, "error": message})


# --------------------------------------------------------------------------
# Request construction (client side)
# --------------------------------------------------------------------------


def allocation_payload(
    machine: str,
    stencil: str,
    kind: str,
    grid_sides: Any,
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    integer: bool = False,
) -> dict[str, Any]:
    return {
        "kind": "allocation_curve",
        "machine": machine,
        "stencil": stencil,
        "partition": kind,
        "grid_sides": [int(n) for n in grid_sides],
        "t_flop": float(t_flop),
        "max_processors": None if max_processors is None else float(max_processors),
        "integer": bool(integer),
    }


def plan_payload(machine: str, n: int, grid: Any | None = None) -> dict[str, Any]:
    return {
        "kind": "plan",
        "machine": machine,
        "n": int(n),
        "grid": None if grid is None else [int(p) for p in grid],
    }


def sweep_payload(
    grid_sides: Any,
    processors: Any,
    machines: Any,
    stencil: str = "5-point",
    kind: str = "square",
    t_flop: float = DEFAULT_T_FLOP,
) -> dict[str, Any]:
    return {
        "kind": "sweep",
        "grid_sides": [int(n) for n in grid_sides],
        "processors": [float(p) for p in processors],
        "machines": list(machines),
        "stencil": stencil,
        "partition": kind,
        "t_flop": float(t_flop),
    }


def sim_sweep_payload(
    machine: str,
    n: int,
    n_processors: int,
    stencil: str = "5-point",
    kind: str = "square",
    *,
    seeds: Any | None = None,
    replicas: int | None = None,
    seed: int = 0,
    t_flop: float = DEFAULT_T_FLOP,
    mode: str = "barrier",
    jitter: float = 0.0,
) -> dict[str, Any]:
    """A batched replica-simulation request.

    Randomness travels either as an explicit ``seeds`` list or as the
    ``replicas`` + ``seed`` shorthand (consecutive seeds starting at
    ``seed``) — the counter RNG has no other state, so the request
    names the whole ensemble deterministically.
    """
    payload: dict[str, Any] = {
        "kind": "sim_sweep",
        "machine": machine,
        "stencil": stencil,
        "partition": kind,
        "n": int(n),
        "n_processors": int(n_processors),
        "t_flop": float(t_flop),
        "mode": str(mode),
        "jitter": float(jitter),
    }
    if seeds is not None:
        payload["seeds"] = [int(s) for s in seeds]
    else:
        payload["replicas"] = 1 if replicas is None else int(replicas)
        payload["seed"] = int(seed)
    return payload


def sim_validate_payload(
    machine: str,
    n: int,
    processors: Any,
    stencil: str = "5-point",
    kind: str = "square",
    t_flop: float = DEFAULT_T_FLOP,
    mode: str = "barrier",
) -> dict[str, Any]:
    """A model-vs-simulation validation sweep over processor counts."""
    return {
        "kind": "sim_validate",
        "machine": machine,
        "stencil": stencil,
        "partition": kind,
        "n": int(n),
        "processors": [int(p) for p in processors],
        "t_flop": float(t_flop),
        "mode": str(mode),
    }


# --------------------------------------------------------------------------
# Request validation (server side)
# --------------------------------------------------------------------------


def _machine(name: Any) -> Architecture:
    try:
        return DEFAULT_MACHINES[name]
    except (KeyError, TypeError):
        known = ", ".join(sorted(DEFAULT_MACHINES))
        raise InvalidParameterError(
            f"unknown machine {name!r}; known machines: {known}"
        ) from None


def _stencil(name: Any) -> Stencil:
    try:
        return stencil_by_name(name)
    except Exception:
        raise InvalidParameterError(f"unknown stencil {name!r}") from None


def _partition(value: Any) -> PartitionKind:
    try:
        return PartitionKind(value)
    except ValueError:
        raise InvalidParameterError(
            f"unknown partition kind {value!r}; expected 'strip' or 'square'"
        ) from None


def _axis(values: Any, label: str) -> list[int]:
    # Every service axis (grid sides, processor counts) requires >= 1,
    # matching the public analysis entry points — the compute handlers
    # call internal kernels, so bad axes must die here, as a 400, not
    # be served as garbage.
    if not isinstance(values, (list, tuple)) or not values:
        raise InvalidParameterError(f"{label} must be a non-empty list")
    try:
        axis = [int(v) for v in values]
    except (TypeError, ValueError):
        raise InvalidParameterError(f"{label} must hold integers") from None
    if any(v < 1 for v in axis):
        raise InvalidParameterError(f"{label} values must be >= 1")
    return axis


def parse_allocation(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validated arguments for an allocation-curve request."""
    max_processors = payload.get("max_processors")
    return {
        "machine": _machine(payload.get("machine")),
        "stencil": _stencil(payload.get("stencil")),
        "kind": _partition(payload.get("partition")),
        "grid_sides": _axis(payload.get("grid_sides"), "grid_sides"),
        "t_flop": float(payload.get("t_flop", DEFAULT_T_FLOP)),
        "max_processors": None if max_processors is None else float(max_processors),
        "integer": bool(payload.get("integer", False)),
    }


def parse_plan(payload: Mapping[str, Any]) -> dict[str, Any]:
    grid = payload.get("grid")
    n = int(payload.get("n", 0))
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    return {
        "machine": _machine(payload.get("machine")),
        "machine_name": payload.get("machine"),
        "n": n,
        "grid": None if grid is None else _axis(grid, "grid"),
    }


def parse_sim_sweep(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validated arguments for a batched replica-simulation request.

    Seed-range, mode, and jitter bounds are enforced by
    :class:`repro.batch.sim.ReplicaBatchSpec` when the graph node is
    built — the same :class:`~repro.errors.InvalidParameterError` → 400
    path as every other malformed field.
    """
    n = int(payload.get("n", 0))
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    n_processors = int(payload.get("n_processors", 0))
    if n_processors < 1:
        raise InvalidParameterError(
            f"n_processors must be >= 1, got {n_processors}"
        )
    seeds = payload.get("seeds")
    if seeds is None:
        replicas = int(payload.get("replicas", 0))
        if replicas < 1:
            raise InvalidParameterError(
                "provide a non-empty seeds list, or replicas >= 1"
            )
        start = int(payload.get("seed", 0))
        seed_list = list(range(start, start + replicas))
    else:
        if not isinstance(seeds, (list, tuple)) or not seeds:
            raise InvalidParameterError("seeds must be a non-empty list")
        try:
            seed_list = [int(s) for s in seeds]
        except (TypeError, ValueError):
            raise InvalidParameterError("seeds must hold integers") from None
    return {
        "machine": _machine(payload.get("machine")),
        "stencil": _stencil(payload.get("stencil", "5-point")),
        "kind": _partition(payload.get("partition", "square")),
        "n": n,
        "n_processors": n_processors,
        "seeds": seed_list,
        "t_flop": float(payload.get("t_flop", DEFAULT_T_FLOP)),
        "mode": str(payload.get("mode", "barrier")),
        "jitter": float(payload.get("jitter", 0.0)),
    }


def parse_sim_validate(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validated arguments for a validation-sweep request."""
    n = int(payload.get("n", 0))
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    return {
        "machine": _machine(payload.get("machine")),
        "stencil": _stencil(payload.get("stencil", "5-point")),
        "kind": _partition(payload.get("partition", "square")),
        "n": n,
        "processors": _axis(payload.get("processors"), "processors"),
        "t_flop": float(payload.get("t_flop", DEFAULT_T_FLOP)),
        "mode": str(payload.get("mode", "barrier")),
    }


def parse_sweep(payload: Mapping[str, Any]) -> dict[str, Any]:
    machines = payload.get("machines")
    if not isinstance(machines, (list, tuple)) or not machines:
        raise InvalidParameterError("machines must be a non-empty list of names")
    for name in machines:
        _machine(name)
    return {
        "grid_sides": _axis(payload.get("grid_sides"), "grid_sides"),
        "processors": [float(p) for p in payload.get("processors") or []],
        "machines": list(machines),
        "stencil": _stencil(payload.get("stencil", "5-point")),
        "kind": _partition(payload.get("partition", "square")),
        "t_flop": float(payload.get("t_flop", DEFAULT_T_FLOP)),
    }
