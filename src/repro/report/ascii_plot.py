"""ASCII line and bar charts — the repo's figure backend.

No plotting library is assumed (the reproduction environment is
offline); every figure in the paper is regenerated as a CSV series plus
an ASCII rendering good enough to read off shape, crossovers and
slopes.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_plot", "bar_chart", "multi_line_plot"]


def _scale(values: Sequence[float], length: int) -> list[int]:
    lo, hi = min(values), max(values)
    # Degenerate ranges clamp to the mid-column instead of dividing by
    # the span: isclose covers single points and constant series; the
    # finiteness scan covers inf/nan anywhere in the data (min/max are
    # order-dependent with NaN, so the span alone cannot be trusted).
    if (
        math.isclose(lo, hi)
        or not math.isfinite(hi - lo)
        or any(not math.isfinite(v) for v in values)
    ):
        return [length // 2 for _ in values]
    return [round((v - lo) / (hi - lo) * (length - 1)) for v in values]


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    marker: str = "*",
) -> str:
    """Scatter/line rendering of one series on a character canvas."""
    return multi_line_plot(xs, {"": ys}, width, height, title, markers=marker)


def multi_line_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    markers: str = "*+ox#@",
) -> str:
    """Several series over a shared x-axis, one marker character each."""
    if not xs or not series:
        raise ValueError("need at least one point and one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(xs)}")
    all_y = [y for ys in series.values() for y in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    cols = _scale(list(xs), width)
    canvas = [[" "] * width for _ in range(height)]
    y_flat = (
        math.isclose(y_lo, y_hi)
        or not math.isfinite(y_hi - y_lo)
        or any(not math.isfinite(y) for y in all_y)
    )
    for idx, (name, ys) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        if y_flat:
            rows = [height // 2 for _ in ys]
        else:
            rows = [
                height - 1 - round((y - y_lo) / (y_hi - y_lo) * (height - 1))
                for y in ys
            ]
        for r, c in zip(rows, cols):
            canvas[r][c] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_lo:.4g}, {y_hi:.4g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{min(xs):.4g}, {max(xs):.4g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
        if name
    )
    if legend:
        lines.append(legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Horizontal bar chart (Figure 6's error bars render this way)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        raise ValueError("need at least one bar")
    v_max = max(values)
    label_strs = [str(lab) for lab in labels]
    label_w = max(len(s) for s in label_strs)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(label_strs, values):
        bar_len = 0 if v_max == 0 else round(value / v_max * width)
        lines.append(f"{label.rjust(label_w)} | {'#' * bar_len} {value:.4g}")
    return "\n".join(lines)
