"""CSV output for experiment artifacts.

Every experiment writes its series as CSV next to the textual report so
downstream tooling (or an actual plotting environment) can regenerate
the paper's figures pixel-for-pixel.

Artifact filenames are *slugs*: table names contain em-dashes,
superscripts, parentheses, and colons (they are written for humans),
but the files they map to are safe ASCII (``[a-z0-9._-]``) so they
survive shells, archives, and case-insensitive filesystems.  Older
releases wrote nearly-raw names; :func:`locate_csv` still finds those
and warns.
"""

from __future__ import annotations

import csv
import re
import unicodedata
import warnings
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "write_csv",
    "default_results_dir",
    "slugify",
    "csv_filename",
    "legacy_csv_filename",
    "locate_csv",
]

#: Dash-like codepoints mapped to plain "-" before the ASCII fold (the
#: NFKD pass drops them instead of translating them).
_DASHES = dict.fromkeys(("–", "—", "−"), "-")


def slugify(name: str) -> str:
    """Fold a human-readable table name to a safe ASCII file slug.

    Lowercases, maps Unicode dashes to ``-`` and compatibility forms to
    ASCII (``n²`` → ``n2``), turns whitespace into ``_`` and ``/`` into
    ``-``, and drops everything else outside ``[a-z0-9._-]``.  Runs of
    separators collapse so near-identical names stay distinguishable
    but never produce ``__`` or ``--`` noise.
    """
    out = name.lower()
    for dash, repl in _DASHES.items():
        out = out.replace(dash, repl)
    out = unicodedata.normalize("NFKD", out)
    out = out.encode("ascii", "ignore").decode()
    out = out.replace("/", "-")
    out = re.sub(r"\s+", "_", out)
    out = re.sub(r"[^a-z0-9._-]", "", out)
    out = re.sub(r"_+", "_", out)
    out = re.sub(r"-+", "-", out)
    out = out.strip("._-")
    return out or "table"


def csv_filename(experiment_id: str, table_name: str) -> str:
    """Canonical artifact filename for one experiment table."""
    return f"{slugify(experiment_id)}_{slugify(table_name)}.csv"


def legacy_csv_filename(experiment_id: str, table_name: str) -> str:
    """The pre-slug naming scheme (kept so old artifacts stay findable).

    .. deprecated::
        Use :func:`csv_filename`; this only exists for
        :func:`locate_csv` and external scripts still holding old paths.
    """
    safe = table_name.lower().replace(" ", "_").replace("/", "-")
    return f"{experiment_id.lower()}_{safe}.csv"


def locate_csv(directory: Path | str, experiment_id: str, table_name: str) -> Path:
    """Find a table's artifact, preferring the slugged name.

    Falls back to the legacy filename (with a :class:`DeprecationWarning`)
    when only an old artifact exists; returns the canonical path when
    neither exists yet (the path a fresh run would write).
    """
    directory = Path(directory)
    canonical = directory / csv_filename(experiment_id, table_name)
    if canonical.exists():
        return canonical
    legacy = directory / legacy_csv_filename(experiment_id, table_name)
    if legacy.exists():
        warnings.warn(
            f"found legacy artifact name {legacy.name!r}; regenerate to get "
            f"{canonical.name!r} (legacy names will stop being searched)",
            DeprecationWarning,
            stacklevel=2,
        )
        return legacy
    return canonical


def default_results_dir() -> Path:
    """``results/`` under the repository root (created on demand)."""
    root = Path(__file__).resolve().parents[3]
    out = root / "results"
    out.mkdir(exist_ok=True)
    return out


def write_csv(
    path: Path | str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write rows to ``path``; returns the resolved path.

    Parent directories are created; cells are written as-is (csv module
    handles quoting), so pass floats/ints, not pre-formatted strings,
    to keep full precision in the artifact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        count = 0
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row {count} has {len(row)} cells, expected {len(headers)}"
                )
            writer.writerow(row)
            count += 1
    return path.resolve()
