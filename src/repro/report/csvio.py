"""CSV output for experiment artifacts.

Every experiment writes its series as CSV next to the textual report so
downstream tooling (or an actual plotting environment) can regenerate
the paper's figures pixel-for-pixel.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["write_csv", "default_results_dir"]


def default_results_dir() -> Path:
    """``results/`` under the repository root (created on demand)."""
    root = Path(__file__).resolve().parents[3]
    out = root / "results"
    out.mkdir(exist_ok=True)
    return out


def write_csv(
    path: Path | str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write rows to ``path``; returns the resolved path.

    Parent directories are created; cells are written as-is (csv module
    handles quoting), so pass floats/ints, not pre-formatted strings,
    to keep full precision in the artifact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        count = 0
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row {count} has {len(row)} cells, expected {len(headers)}"
                )
            writer.writerow(row)
            count += 1
    return path.resolve()
