"""Text tables, ASCII plots, and CSV artifacts for experiments."""

from repro.report.ascii_plot import bar_chart, line_plot, multi_line_plot
from repro.report.csvio import default_results_dir, write_csv
from repro.report.tables import format_kv_block, format_table

__all__ = [
    "bar_chart",
    "default_results_dir",
    "format_kv_block",
    "format_table",
    "line_plot",
    "multi_line_plot",
    "write_csv",
]
