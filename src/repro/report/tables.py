"""Plain-text table rendering for experiment reports.

The benches print the same rows the paper's tables report; this module
keeps the formatting in one place so every experiment output looks the
same and diffs cleanly from run to run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_kv_block"]


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table with a header rule.

    >>> print(format_table(["n", "speedup"], [[256, 10.67]]))
    n    speedup
    ---  -------
    256  10.67
    """
    str_rows = [[_render_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_kv_block(pairs: dict[str, object], title: str | None = None) -> str:
    """Render a key/value block (experiment parameters, summaries)."""
    width = max((len(k) for k in pairs), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {_render_cell(value, 6)}")
    return "\n".join(lines)
