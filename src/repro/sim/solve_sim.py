"""Full-solve timelines: iterations plus scheduled convergence checks.

Bridges the two halves of the repo: the *solver* substrate supplies the
real iteration count for a tolerance, the *machine* simulator supplies
per-iteration timings, and the convergence-cost model (Section 4 /
Saltz–Naik–Nicol) adds the check computation and dissemination on the
chosen schedule.  The result is a wall-clock estimate for the entire
solve, per machine, with the check overhead isolated — the quantity a
practitioner actually plans against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.partitioning.decomposition import Decomposition
from repro.sim.iteration import simulate_iteration
from repro.solver.convergence import (
    CheckSchedule,
    convergence_check_flops,
    dissemination_time,
)
from repro.stencils.stencil import Stencil

__all__ = ["SolveTimeline", "simulate_solve"]


@dataclass(frozen=True)
class SolveTimeline:
    """Wall-clock breakdown of a simulated solve."""

    iterations: int
    checks_performed: int
    iteration_time: float
    check_compute_time: float
    dissemination_time_total: float

    @property
    def total_time(self) -> float:
        return (
            self.iteration_time
            + self.check_compute_time
            + self.dissemination_time_total
        )

    @property
    def check_overhead_fraction(self) -> float:
        """Share of the solve spent on convergence checking."""
        total = self.total_time
        return (
            (self.check_compute_time + self.dissemination_time_total) / total
            if total > 0
            else 0.0
        )


def simulate_solve(
    machine: Architecture,
    decomposition: Decomposition,
    stencil: Stencil,
    t_flop: float,
    iterations: int,
    schedule: CheckSchedule = CheckSchedule(1),
    mode: str = "barrier",
) -> SolveTimeline:
    """Simulate ``iterations`` sweeps with scheduled convergence checks.

    Sweeps share one simulated per-iteration cycle (the workload is
    identical every iteration in Jacobi); each *checked* iteration adds
    the per-partition check flops (on the most loaded rank — checks
    synchronize) and one dissemination round.
    """
    if iterations < 1:
        raise InvalidParameterError("a solve needs at least one iteration")
    one_iteration = simulate_iteration(
        machine, decomposition, stencil, t_flop, mode=mode
    )
    workload = Workload(n=decomposition.n, stencil=stencil, t_flop=t_flop)
    checks = sum(
        1 for i in range(1, iterations + 1) if schedule.should_check(i)
    )
    max_area = float(decomposition.max_area())
    check_compute = checks * convergence_check_flops(workload, max_area) * t_flop
    dissemination = checks * dissemination_time(
        machine, float(decomposition.n_processors)
    )
    return SolveTimeline(
        iterations=iterations,
        checks_performed=checks,
        iteration_time=iterations * one_iteration.cycle_time,
        check_compute_time=check_compute,
        dissemination_time_total=dissemination,
    )
