"""Model-vs-simulation validation sweeps.

The paper closes with "Future effort will be devoted to verifying our
analysis empirically"; this module is that effort, in simulation.  For
a machine and problem it sweeps processor counts, computes the analytic
cycle time (continuous areas, idealized volumes) and the simulated one
(exact decomposition, event-level contention), and reports both plus
summary discrepancy statistics.

What "agreement" should mean is part of the result: the analytic model
idealizes corners, remainders, and phase overlap, so pointwise times
match only to within those effects — but the *shape* (which processor
count is best, how cost grows with P) must match for the paper's
conclusions to stand.  :func:`validation_summary` therefore reports
both relative errors and the optimal-P ranking agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import Workload
from repro.machines.base import Architecture
from repro.partitioning.decomposition import decomposition_for
from repro.sim.iteration import simulate_iteration
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = ["ValidationPoint", "ValidationSweep", "validate_machine", "validation_summary"]


@dataclass(frozen=True)
class ValidationPoint:
    """One processor count's analytic and simulated cycle times."""

    processors: int
    analytic: float
    simulated: float

    @property
    def relative_error(self) -> float:
        """(simulated − analytic) / analytic; negative = model pessimistic."""
        return (self.simulated - self.analytic) / self.analytic


@dataclass(frozen=True)
class ValidationSweep:
    """A full sweep over processor counts for one machine/problem pair."""

    machine_name: str
    kind: PartitionKind
    n: int
    points: tuple[ValidationPoint, ...]

    def max_abs_relative_error(self) -> float:
        return max(abs(p.relative_error) for p in self.points)

    def best_processors_analytic(self) -> int:
        return min(self.points, key=lambda p: p.analytic).processors

    def best_processors_simulated(self) -> int:
        return min(self.points, key=lambda p: p.simulated).processors


def validate_machine(
    machine: Architecture,
    stencil: Stencil,
    n: int,
    processor_counts: list[int],
    kind: PartitionKind = PartitionKind.SQUARE,
    t_flop: float = 1e-6,
    mode: str = "barrier",
) -> ValidationSweep:
    """Sweep processor counts, comparing model and simulation.

    The decomposition kind follows the partition kind: strips decompose
    as strips, squares as near-square blocks (the paper's working
    rectangles).  ``P = 1`` maps to the serial time on both sides.
    """
    workload = Workload(n=n, stencil=stencil, t_flop=t_flop)
    dec_kind = "strip" if kind is PartitionKind.STRIP else "block"
    points: list[ValidationPoint] = []
    for p in processor_counts:
        analytic = machine.cycle_time_all_processors(workload, kind, p)
        decomposition = decomposition_for(n, p, dec_kind)
        sim = simulate_iteration(machine, decomposition, stencil, t_flop, mode=mode)
        points.append(
            ValidationPoint(processors=p, analytic=analytic, simulated=sim.cycle_time)
        )
    return ValidationSweep(
        machine_name=machine.name, kind=kind, n=n, points=tuple(points)
    )


def validation_summary(sweep: ValidationSweep) -> dict[str, float | int | bool]:
    """Headline numbers for a sweep: error stats and ranking agreement."""
    errors = np.array([p.relative_error for p in sweep.points])
    return {
        "n": sweep.n,
        "points": len(sweep.points),
        "mean_relative_error": float(np.mean(errors)),
        "max_abs_relative_error": float(np.max(np.abs(errors))),
        "best_p_analytic": sweep.best_processors_analytic(),
        "best_p_simulated": sweep.best_processors_simulated(),
        "ranking_agrees": sweep.best_processors_analytic()
        == sweep.best_processors_simulated(),
    }
