"""Model-vs-simulation validation sweeps.

The paper closes with "Future effort will be devoted to verifying our
analysis empirically"; this module is that effort, in simulation.  For
a machine and problem it sweeps processor counts, computes the analytic
cycle time (continuous areas, idealized volumes) and the simulated one
(exact decomposition, event-level contention), and reports both plus
summary discrepancy statistics.

What "agreement" should mean is part of the result: the analytic model
idealizes corners, remainders, and phase overlap, so pointwise times
match only to within those effects — but the *shape* (which processor
count is best, how cost grows with P) must match for the paper's
conclusions to stand.  :func:`validation_summary` therefore reports
both relative errors and the optimal-P ranking agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import Workload
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = [
    "ValidationPoint",
    "ValidationSweep",
    "monte_carlo_bands",
    "validate_machine",
    "validation_arrays",
    "validation_summary",
]


@dataclass(frozen=True)
class ValidationPoint:
    """One processor count's analytic and simulated cycle times."""

    processors: int
    analytic: float
    simulated: float

    @property
    def relative_error(self) -> float:
        """(simulated − analytic) / analytic; negative = model pessimistic."""
        return (self.simulated - self.analytic) / self.analytic


@dataclass(frozen=True)
class ValidationSweep:
    """A full sweep over processor counts for one machine/problem pair."""

    machine_name: str
    kind: PartitionKind
    n: int
    points: tuple[ValidationPoint, ...]

    def max_abs_relative_error(self) -> float:
        return max(abs(p.relative_error) for p in self.points)

    def best_processors_analytic(self) -> int:
        return min(self.points, key=lambda p: p.analytic).processors

    def best_processors_simulated(self) -> int:
        return min(self.points, key=lambda p: p.simulated).processors


def validation_arrays(
    machine: Architecture,
    stencil: Stencil,
    n: int,
    processor_counts: list[int],
    kind: PartitionKind = PartitionKind.SQUARE,
    t_flop: float = 1e-6,
    mode: str = "barrier",
) -> dict[str, np.ndarray]:
    """The sweep as named arrays: analytic and simulated cycle columns.

    The simulated column runs on the batched replica path
    (:func:`repro.batch.sim.simulate_replicas`) with ``jitter = 0`` —
    the degenerate replica is pinned bit-equal to the event-level
    :func:`~repro.sim.iteration.simulate_iteration`, so this rewiring
    changes no output byte.  This is also exactly what the graph layer's
    ``sim_validate`` nodes evaluate, so offline sweeps, the CLI, and
    the service serve one implementation.
    """
    from repro.batch.sim import ReplicaBatchSpec, simulate_replicas

    procs = [int(p) for p in processor_counts]
    workload = Workload(n=n, stencil=stencil, t_flop=t_flop)
    analytic = np.asarray(
        [machine.cycle_time_all_processors(workload, kind, p) for p in procs],
        dtype=np.float64,
    )
    spec = ReplicaBatchSpec.build(
        machine, stencil, kind, int(n), procs, 0,
        t_flop=t_flop, mode=mode, jitter=0.0,
    )
    simulated = simulate_replicas(spec).cycle_times
    return {
        "processors": np.asarray(procs, dtype=np.int64),
        "analytic": analytic,
        "simulated": simulated,
    }


def validate_machine(
    machine: Architecture,
    stencil: Stencil,
    n: int,
    processor_counts: list[int],
    kind: PartitionKind = PartitionKind.SQUARE,
    t_flop: float = 1e-6,
    mode: str = "barrier",
) -> ValidationSweep:
    """Sweep processor counts, comparing model and simulation.

    The decomposition kind follows the partition kind: strips decompose
    as strips, squares as near-square blocks (the paper's working
    rectangles).  ``P = 1`` maps to the serial time on both sides.
    """
    arrays = validation_arrays(
        machine, stencil, n, processor_counts, kind, t_flop, mode
    )
    points = tuple(
        ValidationPoint(processors=int(p), analytic=a, simulated=s)
        for p, a, s in zip(
            arrays["processors"].tolist(),
            arrays["analytic"].tolist(),
            arrays["simulated"].tolist(),
        )
    )
    return ValidationSweep(
        machine_name=machine.name, kind=kind, n=n, points=points
    )


def monte_carlo_bands(
    machine: Architecture,
    stencil: Stencil,
    n: int,
    processor_counts: list[int],
    kind: PartitionKind = PartitionKind.SQUARE,
    *,
    t_flop: float = 1e-6,
    mode: str = "barrier",
    replicas: int = 100,
    seed: int = 0,
    jitter: float = 0.02,
) -> dict[str, np.ndarray]:
    """Monte Carlo bands around the validation curve, per processor count.

    Runs ``replicas`` jittered replicas at every processor count through
    the batched simulator (one lockstep call for the whole ensemble) and
    summarizes each count's cycle-time distribution — the scenario the
    scalar island could not reach at interactive cost.
    """
    from repro.batch.sim import ReplicaBatchSpec, simulate_replicas

    procs = [int(p) for p in processor_counts]
    sides = tuple([int(n)] * (len(procs) * int(replicas)))
    proc_col = tuple(p for p in procs for _ in range(int(replicas)))
    seed_col = tuple(range(int(seed), int(seed) + int(replicas))) * len(procs)
    spec = ReplicaBatchSpec(
        machine=machine,
        stencil=stencil,
        kind=kind,
        grid_sides=sides,
        processors=proc_col,
        seeds=seed_col,
        t_flop=float(t_flop),
        mode=mode,
        jitter=float(jitter),
    )
    cycles = simulate_replicas(spec).cycle_times.reshape(
        len(procs), int(replicas)
    )
    return {
        "processors": np.asarray(procs, dtype=np.int64),
        "mean": cycles.mean(axis=1),
        "std": cycles.std(axis=1),
        "q05": np.quantile(cycles, 0.05, axis=1),
        "q95": np.quantile(cycles, 0.95, axis=1),
        "min": cycles.min(axis=1),
        "max": cycles.max(axis=1),
    }


def validation_summary(sweep: ValidationSweep) -> dict[str, float | int | bool]:
    """Headline numbers for a sweep: error stats and ranking agreement."""
    errors = np.array([p.relative_error for p in sweep.points])
    return {
        "n": sweep.n,
        "points": len(sweep.points),
        "mean_relative_error": float(np.mean(errors)),
        "max_abs_relative_error": float(np.max(np.abs(errors))),
        "best_p_analytic": sweep.best_processors_analytic(),
        "best_p_simulated": sweep.best_processors_simulated(),
        "ranking_agrees": sweep.best_processors_analytic()
        == sweep.best_processors_simulated(),
    }
