"""Discrete-event simulation of the machine models."""

from repro.sim.events import EventQueue, Resource, ResourceGrant
from repro.sim.iteration import (
    SimulationResult,
    halo_volumes,
    neighbour_comm_time,
    simulate_iteration,
)
from repro.sim.replica import ReplicaResult, simulate_replica
from repro.sim.solve_sim import SolveTimeline, simulate_solve
from repro.sim.validate import (
    ValidationPoint,
    ValidationSweep,
    monte_carlo_bands,
    validate_machine,
    validation_arrays,
    validation_summary,
)

__all__ = [
    "EventQueue",
    "ReplicaResult",
    "Resource",
    "ResourceGrant",
    "SimulationResult",
    "SolveTimeline",
    "ValidationPoint",
    "ValidationSweep",
    "halo_volumes",
    "monte_carlo_bands",
    "neighbour_comm_time",
    "simulate_iteration",
    "simulate_replica",
    "simulate_solve",
    "validate_machine",
    "validation_arrays",
    "validation_summary",
]
