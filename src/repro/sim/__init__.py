"""Discrete-event simulation of the machine models."""

from repro.sim.events import EventQueue, Resource, ResourceGrant
from repro.sim.iteration import SimulationResult, halo_volumes, simulate_iteration
from repro.sim.solve_sim import SolveTimeline, simulate_solve
from repro.sim.validate import (
    ValidationPoint,
    ValidationSweep,
    validate_machine,
    validation_summary,
)

__all__ = [
    "EventQueue",
    "Resource",
    "ResourceGrant",
    "SimulationResult",
    "SolveTimeline",
    "ValidationPoint",
    "ValidationSweep",
    "halo_volumes",
    "simulate_iteration",
    "simulate_solve",
    "validate_machine",
    "validation_summary",
]
