"""Nearest-neighbour message phases for hypercube and mesh machines.

Halo exchange on a contention-free neighbour network proceeds in
*direction phases*: all ranks exchange with their north neighbour, then
south, etc.  Single-port half-duplex hardware (the paper's footnote 2)
splits every exchange into a send event and a receive event, giving
8 phases for blocks and 4 for strips.  Each phase is a barrier: it ends
when the slowest transfer of that phase completes, which is how
heterogeneous partitions (remainder rows/columns) show up in the
simulated cycle while the continuous model averages them away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["MessageSpec", "phase_durations", "neighbour_exchange_time"]


@dataclass(frozen=True)
class MessageSpec:
    """One rank's transfer in one phase: volume in words (0 = idle)."""

    rank: int
    words: int

    def __post_init__(self) -> None:
        if self.words < 0:
            raise SimulationError("message volume must be non-negative")


def message_time(words: int, alpha: float, beta: float, packet_words: int) -> float:
    """``ceil(V/packet)·alpha + beta`` for one message; 0 for idle ranks."""
    if words == 0:
        return 0.0
    packets = math.ceil(words / packet_words)
    return packets * alpha + beta


def phase_durations(
    phases: list[list[MessageSpec]], alpha: float, beta: float, packet_words: int
) -> list[float]:
    """Duration of each barrier phase: the slowest participant wins."""
    durations = []
    for phase in phases:
        slowest = 0.0
        for spec in phase:
            slowest = max(slowest, message_time(spec.words, alpha, beta, packet_words))
        durations.append(slowest)
    return durations


def neighbour_exchange_time(
    phases: list[list[MessageSpec]], alpha: float, beta: float, packet_words: int
) -> float:
    """Total halo-exchange time: the sum of barrier-phase durations."""
    return sum(phase_durations(phases, alpha, beta, packet_words))
