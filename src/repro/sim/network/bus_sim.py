"""Event-level bus models: synchronous blocks and asynchronous word streams.

The synchronous bus serves each processor's boundary block FIFO; a
requester perceives completion only after its own per-word overhead
``c`` on top of the bus occupancy ``b`` per word.  With ``P`` equal
blocks ready simultaneously the last requester finishes at exactly
``V·(c + b·P)`` — the paper's effective-delay assumption (footnote 3),
which the simulation tests verify rather than presume.

The asynchronous bus streams write words as the compute phase produces
them (boundary points are updated first, one point per ``E·T_fp``); the
bus drains the FIFO word queue and the iteration ends when both the
computation and the backlog are done — equation (7) materialized as
events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.events import Resource

__all__ = [
    "BlockRequest",
    "sync_bus_phase",
    "sync_bus_phase_word_level",
    "WordStream",
    "async_write_drain",
]


@dataclass(frozen=True)
class BlockRequest:
    """One processor's contiguous transfer: ``words`` words ready at ``ready``."""

    processor: int
    words: int
    ready: float

    def __post_init__(self) -> None:
        if self.words < 0:
            raise SimulationError("word count must be non-negative")


def sync_bus_phase(
    requests: list[BlockRequest], b: float, c: float
) -> dict[int, float]:
    """Serve whole blocks FIFO (by ready time, then processor id).

    Returns each processor's *perceived* completion time: bus grant plus
    occupancy ``words·b`` plus its own overhead ``words·c``.  Processors
    with zero words complete at their ready time.
    """
    bus = Resource()
    completions: dict[int, float] = {}
    for req in sorted(requests, key=lambda r: (r.ready, r.processor)):
        if req.processor in completions:
            raise SimulationError(f"duplicate request for processor {req.processor}")
        if req.words == 0:
            completions[req.processor] = req.ready
            continue
        grant = bus.serve(req.ready, req.words * b)
        completions[req.processor] = grant.finish + req.words * c
    return completions


def sync_bus_phase_word_level(
    requests: list[BlockRequest], b: float, c: float
) -> dict[int, float]:
    """Word-granular round-robin arbitration (the footnote-3 alternative).

    Each processor requests one word at a time, spending its overhead
    ``c`` between its own grants; the bus serves the earliest-ready
    request (processor id breaks ties).  With ``P`` equal contenders the
    steady-state per-word pace is ``max(b·P, c + b)``, so the phase ends
    near ``V·(c + b·P)`` when overhead hides under others' bus turns —
    the same envelope as block service, reached by a different
    discipline.  Used by the arbitration ablation.
    """
    bus = Resource()
    remaining = {r.processor: r.words for r in requests}
    next_ready = {r.processor: r.ready for r in requests}
    completions = {r.processor: r.ready for r in requests if r.words == 0}
    pending = {p for p, w in remaining.items() if w > 0}
    if len(remaining) != len(requests):
        raise SimulationError("duplicate processor in word-level phase")
    while pending:
        proc = min(pending, key=lambda p: (next_ready[p], p))
        grant = bus.serve(next_ready[proc], b)
        remaining[proc] -= 1
        next_ready[proc] = grant.finish + c
        if remaining[proc] == 0:
            completions[proc] = grant.finish + c
            pending.discard(proc)
    return completions


@dataclass(frozen=True)
class WordStream:
    """Words produced at a constant rate during a compute phase.

    Word ``i`` (0-based) becomes available at ``start + (i+1)·interval``
    — the asynchronous bus's "written as soon as updated" stream, with
    ``interval = E(S)·T_fp`` per boundary point.
    """

    processor: int
    words: int
    start: float
    interval: float

    def word_ready(self, index: int) -> float:
        if not 0 <= index < self.words:
            raise SimulationError(f"word index {index} out of range")
        return self.start + (index + 1) * self.interval


def async_write_drain(streams: list[WordStream], b: float) -> float:
    """Drain interleaved write streams through the bus FIFO; returns the
    time the last word clears the bus.

    Words are merged in global availability order (then by processor and
    index for determinism), each occupying the bus for ``b``.  Returns
    0.0 when no stream carries words.
    """
    events: list[tuple[float, int, int]] = []
    for s in streams:
        for i in range(s.words):
            events.append((s.word_ready(i), s.processor, i))
    if not events:
        return 0.0
    events.sort()
    bus = Resource()
    finish = 0.0
    for ready, _proc, _idx in events:
        finish = bus.serve(ready, b).finish
    return finish
