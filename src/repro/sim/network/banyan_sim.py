"""Banyan switching-network model with discrete stages.

Under the paper's placement assumptions (one memory module per
processor, boundary sets placed so concurrent reads never collide at a
2×2 switch) a read is a pipeline-free double traversal of the network:
``2 · w · stages`` per word, with ``stages = ceil(log2(N))`` for a real
network of ``N`` ports (the analytic model uses the continuous
``log2(N)``; the gap is one of the things the validation experiment
quantifies).  Writes happen asynchronously during compute and are
assumed contention-free (assumption 4), so they never extend the cycle.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError

__all__ = ["network_stages", "read_phase_time"]


def network_stages(n_ports: int) -> int:
    """Physical 2×2-switch stages for ``n_ports`` endpoints.

    ``ceil(log2 N)`` — a real banyan rounds the port count up to the
    next power of two.  A single-port "network" has no stages.
    """
    if n_ports < 1:
        raise SimulationError("network needs at least one port")
    if n_ports == 1:
        return 0
    return math.ceil(math.log2(n_ports))


def read_phase_time(words_per_rank: list[int], w: float, n_ports: int) -> float:
    """Barrier read phase: slowest rank's serial word reads through the net.

    Each word costs ``2·w·stages`` (request trip + data trip); ranks
    read concurrently without colliding, so the phase is the max, not
    the sum, across ranks.
    """
    if w <= 0:
        raise SimulationError("switch time must be positive")
    stages = network_stages(n_ports)
    per_word = 2.0 * w * stages
    return max((words * per_word for words in words_per_rank), default=0.0)
