"""Network models for the discrete-event simulator."""

from repro.sim.network.banyan_sim import network_stages, read_phase_time
from repro.sim.network.butterfly import (
    ButterflyNetwork,
    bit_reversal_permutation,
    cyclic_shift_permutation,
    random_permutation,
)
from repro.sim.network.bus_sim import (
    BlockRequest,
    WordStream,
    async_write_drain,
    sync_bus_phase,
    sync_bus_phase_word_level,
)
from repro.sim.network.link_sim import (
    MessageSpec,
    message_time,
    neighbour_exchange_time,
    phase_durations,
)

__all__ = [
    "BlockRequest",
    "ButterflyNetwork",
    "bit_reversal_permutation",
    "MessageSpec",
    "WordStream",
    "async_write_drain",
    "message_time",
    "neighbour_exchange_time",
    "network_stages",
    "phase_durations",
    "read_phase_time",
    "cyclic_shift_permutation",
    "random_permutation",
    "sync_bus_phase",
    "sync_bus_phase_word_level",
]
