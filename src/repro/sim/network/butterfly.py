"""An actual butterfly (banyan) topology with routing and congestion.

Section 7 *assumes* boundary values can be placed in memory modules
"in such a way that no contention at switches is ever incurred by any
boundary value read" (assumption 3).  This module builds the network
the assumption is about: ``N = 2^d`` inputs, ``d`` stages of 2×2
switches, destination-bit routing, and exact per-edge congestion for
any processor→module access pattern.

The classical facts the tests verify:

* the identity pattern (module ``i`` local to processor ``i`` — the
  paper's placement) routes with congestion 1: the assumption is
  *achievable*;
* cyclic shifts also route conflict-free (butterflies realize them);
* the bit-reversal permutation suffers Θ(√N) congestion — the
  assumption is *fragile* under bad placement;
* random permutations land in between (Θ(log N/log log N) expected).

Effective read time under congestion ``C`` is modelled as ``C`` serial
traversals of the hot switch: ``t_read = C · 2 · w · d`` per word — the
multiplier the E-ABL-PLACEMENT ablation reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.units import is_power_of_two, log2_int

__all__ = [
    "ButterflyNetwork",
    "bit_reversal_permutation",
    "cyclic_shift_permutation",
    "random_permutation",
]


def bit_reversal_permutation(n_ports: int) -> list[int]:
    """``i -> reverse of i's d-bit representation`` — the worst case."""
    d = log2_int(n_ports)
    out = []
    for i in range(n_ports):
        rev = 0
        for bit in range(d):
            if i & (1 << bit):
                rev |= 1 << (d - 1 - bit)
        out.append(rev)
    return out


def cyclic_shift_permutation(n_ports: int, shift: int = 1) -> list[int]:
    """``i -> (i + shift) mod N`` — conflict-free on a butterfly."""
    return [(i + shift) % n_ports for i in range(n_ports)]


def random_permutation(n_ports: int, seed: int = 0) -> list[int]:
    """A seeded random permutation (deterministic for tests)."""
    rng = np.random.default_rng(seed)
    return [int(x) for x in rng.permutation(n_ports)]


@dataclass(frozen=True)
class ButterflyNetwork:
    """A ``d``-stage butterfly over ``N = 2^d`` ports."""

    n_ports: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.n_ports):
            raise SimulationError(
                f"butterfly needs a power-of-two port count, got {self.n_ports}"
            )

    @property
    def stages(self) -> int:
        return log2_int(self.n_ports)

    # --------------------------------------------------------------- routing

    def route(self, src: int, dst: int) -> list[tuple[int, int, int]]:
        """Directed edges ``(stage, from_row, to_row)`` of the unique path.

        Destination-bit routing: after stage ``s`` the row agrees with
        ``dst`` on its top ``s+1`` bits (bits are consumed MSB-first).
        """
        if not (0 <= src < self.n_ports and 0 <= dst < self.n_ports):
            raise SimulationError(
                f"ports must be in [0, {self.n_ports}); got {src}->{dst}"
            )
        d = self.stages
        edges = []
        row = src
        for s in range(d):
            bit = 1 << (d - 1 - s)
            next_row = (row & ~bit) | (dst & bit)
            edges.append((s, row, next_row))
            row = next_row
        assert row == dst, "destination-bit routing must terminate at dst"
        return edges

    def edge_loads(self, pattern: Sequence[int]) -> dict[tuple[int, int, int], int]:
        """Usage count of every directed stage-edge for one request each."""
        if len(pattern) != self.n_ports:
            raise SimulationError(
                f"pattern has {len(pattern)} entries for {self.n_ports} ports"
            )
        loads: dict[tuple[int, int, int], int] = {}
        for src, dst in enumerate(pattern):
            for edge in self.route(src, dst):
                loads[edge] = loads.get(edge, 0) + 1
        return loads

    def congestion(self, pattern: Sequence[int]) -> int:
        """Maximum load over all stage-edges (1 = conflict-free)."""
        loads = self.edge_loads(pattern)
        return max(loads.values(), default=0)

    def read_word_time(self, w: float, pattern: Sequence[int]) -> float:
        """Per-word read time under this placement: ``C · 2 · w · d``.

        ``C = 1`` recovers the paper's contention-free ``2·w·log2(N)``.
        """
        if w <= 0:
            raise SimulationError("switch time must be positive")
        if self.stages == 0:
            return 0.0
        return self.congestion(pattern) * 2.0 * w * self.stages
