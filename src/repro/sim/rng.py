"""Stateless counter-based randomness for replica simulation.

Replica simulation perturbs each rank's compute time by a bounded
jitter factor.  The perturbation must be *identical, bit for bit*, in
the scalar event-level oracle (one replica at a time, Python floats)
and in the lockstep-array twin (:mod:`repro.batch.sim`, thousands of
replicas in NumPy arrays).  A stateful generator cannot give that — the
draw order differs between the two schedules — so draws are a pure
function of ``(seed, rank)``:

``u(seed, rank) = mix64(seed + (rank + 1) · GAMMA) >> 11 · 2⁻⁵³``

where ``mix64`` is the SplitMix64 finalizer (Steele, Lea & Flood 2014).
All intermediate arithmetic is unsigned 64-bit modular; the final
53-bit mantissa converts to float64 exactly, so the Python-int path and
the ``uint64`` ndarray path produce the same doubles by construction.
The function is also trivially deterministic, which keeps simulation
request fingerprints pure (the seed *is* the canonical RNG state).

``jitter = 0`` multiplies every compute time by exactly ``1.0`` — the
degenerate replica reproduces the unperturbed simulator bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "MAX_SEED",
    "jitter_factor_grid",
    "jitter_factors",
    "uniform01",
    "uniform01_grid",
]

_MASK = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15  # 2⁶⁴ / φ, the SplitMix64 stream increment
_MULT1 = 0xBF58476D1CE4E5B9
_MULT2 = 0x94D049BB133111EB
_TO_UNIT = 2.0**-53

#: Seeds are canonicalized as unsigned 64-bit integers.
MAX_SEED = _MASK


def _check_seed(seed: int) -> int:
    if not 0 <= seed <= MAX_SEED:
        raise InvalidParameterError(
            f"seed must be an integer in [0, 2**64), got {seed!r}"
        )
    return seed


def _check_jitter(jitter: float) -> float:
    if not 0.0 <= jitter < 1.0:
        raise InvalidParameterError(
            f"jitter must lie in [0, 1) so compute times stay positive, "
            f"got {jitter!r}"
        )
    return jitter


def _mix64(x: int) -> int:
    """SplitMix64 finalizer on a Python int, modulo 2⁶⁴."""
    x &= _MASK
    x = ((x ^ (x >> 30)) * _MULT1) & _MASK
    x = ((x ^ (x >> 27)) * _MULT2) & _MASK
    return x ^ (x >> 31)


def uniform01(seed: int, rank: int) -> float:
    """The scalar draw: ``u ∈ [0, 1)`` as a pure function of (seed, rank)."""
    _check_seed(seed)
    if rank < 0:
        raise InvalidParameterError("rank must be non-negative")
    h = _mix64((seed + (rank + 1) * _GAMMA) & _MASK)
    return (h >> 11) * _TO_UNIT


def uniform01_grid(seeds: np.ndarray, n_ranks: int) -> np.ndarray:
    """The vectorized draw: shape ``[len(seeds), n_ranks]`` of float64.

    Bit-identical to :func:`uniform01` at every (seed, rank) — same
    modular arithmetic, carried out in wrapping ``uint64`` ufuncs.
    """
    if n_ranks < 1:
        raise InvalidParameterError("n_ranks must be positive")
    s = np.asarray(seeds, dtype=np.uint64)
    counters = (np.arange(1, n_ranks + 1, dtype=np.uint64)) * np.uint64(_GAMMA)
    x = s[:, None] + counters[None, :]
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MULT1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MULT2)
    x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) * _TO_UNIT


def jitter_factors(seed: int, n_ranks: int, jitter: float) -> list[float]:
    """Per-rank compute multipliers ``1 + jitter·(2u − 1)`` (scalar path)."""
    _check_jitter(jitter)
    return [
        1.0 + jitter * (2.0 * uniform01(seed, rank) - 1.0)
        for rank in range(n_ranks)
    ]


def jitter_factor_grid(
    seeds: np.ndarray, n_ranks: int, jitter: float
) -> np.ndarray:
    """Vectorized twin of :func:`jitter_factors`: ``[R, n_ranks]`` floats."""
    _check_jitter(jitter)
    u = uniform01_grid(seeds, n_ranks)
    return 1.0 + jitter * (2.0 * u - 1.0)
