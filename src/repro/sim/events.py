"""A small discrete-event simulation engine.

Deliberately minimal: a time-ordered event heap with deterministic
tie-breaking (insertion order), plus a FIFO :class:`Resource` that
serializes work the way a bus serializes word transfers.  The network
models in :mod:`repro.sim.network` are built on these two pieces.

Determinism matters here — simulation results are compared against
closed-form predictions in tests, so identical inputs must give
identical timelines on every run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

__all__ = ["EventQueue", "Resource", "ResourceGrant"]


class EventQueue:
    """Time-ordered callback queue with deterministic FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._processed = 0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Enqueue ``callback`` to fire at absolute ``time``.

        Scheduling into the past is a programming error in a simulation
        script, so it raises rather than clamping.
        """
        if time < self.now - 1e-15:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def run(self, max_events: int = 10_000_000) -> float:
        """Drain the queue; returns the final simulation time.

        ``max_events`` guards against runaway self-rescheduling loops
        (a bug, not a workload property).  The guard counts events of
        *this* drain only — ``events_processed`` keeps the lifetime
        total, but a queue reused for several runs must not inherit the
        previous drains' budget.
        """
        run_processed = 0
        while self._heap:
            if run_processed >= max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a loop")
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            run_processed += 1
            self._processed += 1
            callback()
        return self.now

    @property
    def events_processed(self) -> int:
        return self._processed


@dataclass(frozen=True)
class ResourceGrant:
    """Outcome of one FIFO service: when it started and finished."""

    start: float
    finish: float


@dataclass
class Resource:
    """A serially-shared resource (the bus) served strictly FIFO.

    Requests are granted in the order :meth:`serve` is called, each
    occupying the resource for its holding time but never before its
    ready time.  This is an analytic FIFO queue rather than an
    event-driven one — sufficient because all our request sequences are
    known when issued — but it plugs into :class:`EventQueue` timelines
    through the returned grant times.
    """

    free_at: float = 0.0
    total_busy: float = field(default=0.0)
    grants: int = 0

    def serve(self, ready_time: float, holding_time: float) -> ResourceGrant:
        """Grant the next FIFO slot at ``max(free_at, ready_time)``."""
        if holding_time < 0:
            raise SimulationError("holding time must be non-negative")
        start = max(self.free_at, ready_time)
        finish = start + holding_time
        self.free_at = finish
        self.total_busy += holding_time
        self.grants += 1
        return ResourceGrant(start=start, finish=finish)

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]``."""
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        return min(self.total_busy / horizon, 1.0)
