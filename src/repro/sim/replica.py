"""Seed-perturbed replica simulation — the event-level oracle.

A *replica* is one (machine, N, P, seed) execution of a solver
iteration in which every rank's compute time is perturbed by a bounded
multiplicative jitter drawn from the stateless counter RNG in
:mod:`repro.sim.rng`.  The communication fabric is untouched — link and
switch times are properties of the hardware — but perturbed compute
shifts phase ready times, so contention, pipelining overlap, and
asynchronous write backlog all respond to the draw.  Ensembles of
replicas put Monte Carlo bands around the paper's deterministic
validation curves.

``jitter = 0`` reproduces :func:`repro.sim.iteration.simulate_iteration`
bit for bit (every compute time is multiplied by exactly ``1.0``), which
is how the batched path can serve the deterministic validation sweeps
byte-identically.

This module is the scalar reference: one replica at a time through the
event-level phase models.  The lockstep-array twin is
:func:`repro.batch.sim.simulate_replicas`; property tests pin the two
equal, replica by replica, at matched seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import Workload
from repro.errors import SimulationError
from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.partitioning.decomposition import decomposition_for
from repro.sim.iteration import (
    _simulate_async_bus,
    _simulate_banyan,
    _simulate_neighbour_net,
    _simulate_sync_bus,
    halo_volumes,
)
from repro.sim.rng import jitter_factors
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = ["ReplicaResult", "simulate_replica"]


@dataclass(frozen=True)
class ReplicaResult:
    """One perturbed replica's timings."""

    cycle_time: float
    seed: int
    jitter: float
    compute_times: tuple[float, ...]
    mode: str
    machine_name: str

    @property
    def n_processors(self) -> int:
        return len(self.compute_times)


def simulate_replica(
    machine: Architecture,
    n: int,
    n_processors: int,
    stencil: Stencil,
    seed: int,
    *,
    kind: PartitionKind = PartitionKind.SQUARE,
    t_flop: float = 1e-6,
    mode: str = "barrier",
    jitter: float = 0.0,
) -> ReplicaResult:
    """Simulate one jittered replica through the event-level models.

    The decomposition kind follows the partition kind (strips decompose
    as strips, squares as near-square blocks), matching
    :func:`repro.sim.validate.validate_machine`.  ``P = 1`` replicas are
    pure (jittered) compute.
    """
    workload = Workload(n=n, stencil=stencil, t_flop=t_flop)
    dec_kind = "strip" if kind is PartitionKind.STRIP else "block"
    decomposition = decomposition_for(n, n_processors, dec_kind)
    reads, writes = halo_volumes(decomposition, stencil)

    et = workload.flops_per_point * workload.t_flop
    factors = jitter_factors(seed, n_processors, jitter)
    compute = [
        (part.area * et) * factors[rank]
        for rank, part in enumerate(decomposition.partitions)
    ]

    if n_processors == 1:
        cycle = compute[0]
    elif isinstance(machine, SynchronousBus):
        cycle = _simulate_sync_bus(machine, reads, writes, compute, mode)
    elif isinstance(machine, AsynchronousBus):
        intervals = [et * factors[rank] for rank in range(n_processors)]
        cycle = _simulate_async_bus(machine, reads, writes, compute, intervals)
    elif isinstance(machine, Hypercube):  # covers MeshGrid subclass
        cycle = _simulate_neighbour_net(machine, decomposition, stencil, compute)
    elif isinstance(machine, BanyanNetwork):
        cycle = _simulate_banyan(machine, reads, n_processors, compute)
    else:
        raise SimulationError(f"no replica simulator for machine {machine.name!r}")

    return ReplicaResult(
        cycle_time=cycle,
        seed=seed,
        jitter=jitter,
        compute_times=tuple(compute),
        mode=mode,
        machine_name=machine.name,
    )
