"""Simulate one solver iteration on a machine, event by event.

Dispatches a (machine, decomposition, stencil) triple to the matching
network model and produces a :class:`SimulationResult` with the
simulated cycle time plus per-rank phase timings.  Halo volumes come
from the *exact* decomposition (discrete point counts, corners
included), not the model's continuous formulas — so comparing simulated
cycles against :meth:`Architecture.cycle_time` quantifies everything
the analytic model idealizes: integrality, corner points, remainder
rows, barrier pipelining.

Two scheduling modes for the synchronous bus:

* ``"barrier"`` — global barriers between read/compute/write phases;
  reproduces the paper's additive model almost exactly;
* ``"pipelined"`` — each rank computes as soon as *its* read finishes
  and queues its write immediately after computing; measures the
  overlap the paper's model leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import Workload
from repro.errors import SimulationError
from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.partitioning.decomposition import Decomposition
from repro.sim.network.banyan_sim import read_phase_time
from repro.sim.network.bus_sim import (
    BlockRequest,
    WordStream,
    async_write_drain,
    sync_bus_phase,
)
from repro.sim.network.link_sim import MessageSpec, neighbour_exchange_time
from repro.stencils.stencil import Stencil

__all__ = [
    "SimulationResult",
    "halo_volumes",
    "neighbour_comm_time",
    "simulate_iteration",
]


@dataclass(frozen=True)
class SimulationResult:
    """Measured timings for one simulated iteration."""

    cycle_time: float
    compute_times: tuple[float, ...]
    read_words: tuple[int, ...]
    write_words: tuple[int, ...]
    mode: str
    machine_name: str

    @property
    def n_processors(self) -> int:
        return len(self.compute_times)

    @property
    def max_compute(self) -> float:
        return max(self.compute_times)

    @property
    def total_read_words(self) -> int:
        return sum(self.read_words)


def halo_volumes(
    decomposition: Decomposition, stencil: Stencil
) -> tuple[list[int], list[int]]:
    """Exact per-rank (read, write) halo word counts.

    Reads sum incoming edge volumes (sources own disjoint points, so no
    double counting).  Writes count the *union* of owned points any
    neighbour needs — on shared-memory machines a boundary value is
    written to global memory once, however many partitions read it.
    """
    parts = decomposition.partitions
    n_ranks = len(parts)
    reads = [0] * n_ranks
    written: list[set[tuple[int, int]]] = [set() for _ in range(n_ranks)]
    offsets = stencil.halo_offsets()
    for dst_idx, dst in enumerate(parts):
        for src_idx, src in enumerate(parts):
            if src_idx == dst_idx:
                continue
            needed: set[tuple[int, int]] = set()
            for (oi, oj) in offsets:
                r0 = max(dst.row_start + oi, src.row_start)
                r1 = min(dst.row_stop + oi, src.row_stop)
                c0 = max(dst.col_start + oj, src.col_start)
                c1 = min(dst.col_stop + oj, src.col_stop)
                if r0 < r1 and c0 < c1:
                    needed.update(
                        (i, j) for i in range(r0, r1) for j in range(c0, c1)
                    )
            if needed:
                reads[dst_idx] += len(needed)
                written[src_idx] |= needed
    return reads, [len(s) for s in written]


def _compute_times(
    decomposition: Decomposition, workload: Workload
) -> list[float]:
    et = workload.flops_per_point * workload.t_flop
    return [part.area * et for part in decomposition.partitions]


def _simulate_sync_bus(
    machine: SynchronousBus,
    reads: list[int],
    writes: list[int],
    compute: list[float],
    mode: str,
) -> float:
    n_ranks = len(compute)
    if mode == "barrier":
        read_done = sync_bus_phase(
            [BlockRequest(p, reads[p], 0.0) for p in range(n_ranks)],
            machine.b,
            machine.c,
        )
        t1 = max(read_done.values())
        t2 = t1 + max(compute)
        write_done = sync_bus_phase(
            [BlockRequest(p, writes[p], t2) for p in range(n_ranks)],
            machine.b,
            machine.c,
        )
        return max(write_done.values())
    if mode == "pipelined":
        read_done = sync_bus_phase(
            [BlockRequest(p, reads[p], 0.0) for p in range(n_ranks)],
            machine.b,
            machine.c,
        )
        write_ready = [read_done[p] + compute[p] for p in range(n_ranks)]
        write_done = sync_bus_phase(
            [BlockRequest(p, writes[p], write_ready[p]) for p in range(n_ranks)],
            machine.b,
            machine.c,
        )
        return max(write_done.values())
    raise SimulationError(f"unknown bus scheduling mode {mode!r}")


def _simulate_async_bus(
    machine: AsynchronousBus,
    reads: list[int],
    writes: list[int],
    compute: list[float],
    intervals: list[float],
) -> float:
    n_ranks = len(compute)
    read_done = sync_bus_phase(
        [BlockRequest(p, reads[p], 0.0) for p in range(n_ranks)],
        machine.b,
        machine.c,
    )
    t1 = max(read_done.values())
    streams = [
        WordStream(processor=p, words=writes[p], start=t1, interval=intervals[p])
        for p in range(n_ranks)
    ]
    drain_end = async_write_drain(streams, machine.b)
    compute_end = t1 + max(compute)
    return max(compute_end, drain_end)


def _edge_direction(src, dst) -> tuple[int, int]:
    def sign(x: int) -> int:
        return (x > 0) - (x < 0)

    dr = sign(dst.row_start - src.row_start) or sign(dst.row_stop - src.row_stop)
    dc = sign(dst.col_start - src.col_start) or sign(dst.col_stop - src.col_stop)
    return dr, dc


def neighbour_comm_time(
    machine: Hypercube,
    decomposition: Decomposition,
    stencil: Stencil,
) -> float:
    """Direction-phased halo-exchange time (geometry only, no compute).

    Pure function of the decomposition and link parameters, so the
    batched replica simulator computes it once per unique configuration
    and broadcasts it across the replica axis.
    """
    parts = decomposition.partitions
    edges = decomposition.halo_edges(stencil)
    by_direction: dict[tuple[int, int], list[MessageSpec]] = {}
    for e in edges:
        d = _edge_direction(parts[e.src], parts[e.dst])
        by_direction.setdefault(d, []).append(MessageSpec(rank=e.src, words=e.volume))
    # Each direction is one send phase and one receive phase (half-duplex
    # single-port): receive is the mirror direction's send, so phases are
    # simply all directions, each counted once per endpoint role.
    phases: list[list[MessageSpec]] = []
    for d in sorted(by_direction):
        phases.append(by_direction[d])  # sends in direction d
        phases.append(by_direction[d])  # matching receives complete the pair
    return neighbour_exchange_time(
        phases, machine.alpha, machine.beta, machine.packet_words
    )


def _simulate_neighbour_net(
    machine: Hypercube,
    decomposition: Decomposition,
    stencil: Stencil,
    compute: list[float],
) -> float:
    """Direction-phased halo exchange, then a barrier compute phase."""
    return neighbour_comm_time(machine, decomposition, stencil) + max(compute)


def _simulate_banyan(
    machine: BanyanNetwork,
    reads: list[int],
    n_processors: int,
    compute: list[float],
) -> float:
    read_phase = read_phase_time(reads, machine.w, n_processors)
    return read_phase + max(compute)


def simulate_iteration(
    machine: Architecture,
    decomposition: Decomposition,
    stencil: Stencil,
    t_flop: float,
    mode: str = "barrier",
) -> SimulationResult:
    """Simulate one iteration; see module docs for the mode semantics.

    One-processor decompositions short-circuit to pure compute — no
    machine charges communication to a partition with no neighbours.
    """
    workload = Workload(n=decomposition.n, stencil=stencil, t_flop=t_flop)
    reads, writes = halo_volumes(decomposition, stencil)
    compute = _compute_times(decomposition, workload)

    if decomposition.n_processors == 1:
        cycle = compute[0]
    elif isinstance(machine, SynchronousBus):
        cycle = _simulate_sync_bus(machine, reads, writes, compute, mode)
    elif isinstance(machine, AsynchronousBus):
        point_time = workload.flops_per_point * workload.t_flop
        intervals = [point_time] * decomposition.n_processors
        cycle = _simulate_async_bus(machine, reads, writes, compute, intervals)
    elif isinstance(machine, Hypercube):  # covers MeshGrid subclass
        cycle = _simulate_neighbour_net(machine, decomposition, stencil, compute)
    elif isinstance(machine, BanyanNetwork):
        cycle = _simulate_banyan(
            machine, reads, decomposition.n_processors, compute
        )
    else:
        raise SimulationError(f"no simulator for machine {machine.name!r}")

    return SimulationResult(
        cycle_time=cycle,
        compute_times=tuple(compute),
        read_words=tuple(reads),
        write_words=tuple(writes),
        mode=mode,
        machine_name=machine.name,
    )
