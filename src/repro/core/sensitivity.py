"""Parameter elasticities of the optimized cycle time.

Generalizes the leverage analysis (Section 6.1's doubling experiments)
to infinitesimal sensitivities: the elasticity

``ε_θ = d ln t* / d ln θ``

says that a 1% improvement in parameter ``θ`` buys ``ε_θ`` percent of
optimized cycle time.  Elasticities expose the paper's structure
directly — at a c=0 bus optimum they are exactly

* strips:  ε_b = ε_T = 1/2   (time ∝ √(b·E·T));
* squares: ε_b = 2/3, ε_T = 1/3  (communication is twice computation);

and they always sum to 1 over {b, c, T_fp} for buses (cycle time is
homogeneous of degree 1 in the time-valued parameters), a conservation
law the tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import optimize_allocation
from repro.core.leverage import _speed_up_parameter
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind

__all__ = ["elasticity", "elasticity_profile", "ElasticityProfile"]


def elasticity(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    parameter: str,
    max_processors: float | None = None,
    step: float = 1e-4,
) -> float:
    """Central-difference log-log derivative of t* w.r.t. ``parameter``.

    Both evaluations re-optimize the allocation, so the envelope theorem
    applies: the derivative reflects the optimized system, not a frozen
    partition size.
    """
    if step <= 0 or step >= 0.5:
        raise InvalidParameterError("step must be in (0, 0.5)")
    up_machine, up_workload = _speed_up_parameter(
        machine, workload, parameter, 1.0 / (1.0 + step)  # θ·(1+step)
    )
    down_machine, down_workload = _speed_up_parameter(
        machine, workload, parameter, 1.0 / (1.0 - step)  # θ·(1−step)
    )
    import math

    t_up = optimize_allocation(up_machine, up_workload, kind, max_processors).cycle_time
    t_down = optimize_allocation(
        down_machine, down_workload, kind, max_processors
    ).cycle_time
    return (math.log(t_up) - math.log(t_down)) / (
        math.log(1.0 + step) - math.log(1.0 - step)
    )


@dataclass(frozen=True)
class ElasticityProfile:
    """All parameter elasticities at one operating point."""

    elasticities: dict[str, float]

    def total(self) -> float:
        """Sum over time-valued parameters; 1.0 for degree-1 homogeneity."""
        return sum(self.elasticities.values())

    def dominant(self) -> str:
        """The parameter with the most leverage."""
        return max(self.elasticities, key=lambda k: self.elasticities[k])


_TIME_PARAMETERS = ("b", "c", "alpha", "beta", "w", "t_flop")


def elasticity_profile(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    max_processors: float | None = None,
) -> ElasticityProfile:
    """Elasticities for every time-valued parameter the machine exposes.

    Zero-valued parameters are skipped (no logarithmic derivative
    exists at zero cost).
    """
    out: dict[str, float] = {}
    for p in _TIME_PARAMETERS:
        if p == "t_flop":
            out[p] = elasticity(machine, workload, kind, p, max_processors)
        elif hasattr(machine, p) and getattr(machine, p) != 0.0:
            out[p] = elasticity(machine, workload, kind, p, max_processors)
    return ElasticityProfile(elasticities=out)
