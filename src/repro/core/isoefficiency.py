"""Isoefficiency: how fast must the problem grow to hold efficiency?

A natural extension of the paper's scaling analysis (it became the
standard lens a few years later): fix a target efficiency ``e = S/N``
and ask how the problem size ``n²`` must grow with the machine size
``N`` to maintain it.  The paper's cycle-time models answer directly:

* hypercube/mesh (fixed F regime): efficiency is set by the points per
  processor alone, so ``n² ∝ N`` — perfectly scalable;
* banyan: the ``log N`` read term must be amortized, ``n² ∝ N·log²N``
  (squares);
* buses: communication grows with *total* volume, so efficiency decays
  unless ``n²`` grows polynomially faster than N — the isoefficiency
  function is ``n² ∝ N³`` for squares (from ``S ∝ (n²)^(1/3)``: holding
  ``S/N`` constant needs ``(n²)^(1/3) ∝ N``).

:func:`isoefficiency_exponent` measures the growth exponent from the
model numerically, so these claims are tested, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.parameters import Workload
from repro.core.speedup import speedup_at_processors
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind

__all__ = ["grid_for_efficiency", "isoefficiency_exponent", "IsoefficiencyFit"]


def grid_for_efficiency(
    machine: Architecture,
    workload_template: Workload,
    kind: PartitionKind,
    n_processors: int,
    target_efficiency: float,
    n_max: int = 1 << 18,
) -> int:
    """Smallest grid side whose all-N speedup reaches ``e·N``.

    Binary search on ``n``; efficiency at fixed N increases with problem
    size for every machine in the model (communication amortizes), so
    the search is well-posed.  Raises when ``n_max`` is insufficient.
    """
    if not 0 < target_efficiency < 1:
        raise InvalidParameterError("target efficiency must be in (0, 1)")
    if n_processors < 2:
        raise InvalidParameterError("isoefficiency needs at least 2 processors")

    def efficient(n: int) -> bool:
        w = workload_template.with_n(n)
        s = speedup_at_processors(machine, w, kind, float(n_processors))
        return s >= target_efficiency * n_processors

    lo = max(2, n_processors if kind is PartitionKind.STRIP else 2)
    # Grid must host at least one point (strip: one row) per processor.
    while lo * lo < n_processors:
        lo += 1
    if efficient(lo):
        return lo
    hi = lo
    while hi < n_max and not efficient(hi):
        hi *= 2
    if hi >= n_max and not efficient(hi):
        raise InvalidParameterError(
            f"no grid up to {n_max} reaches efficiency {target_efficiency} "
            f"on {n_processors} processors"
        )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if efficient(mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class IsoefficiencyFit:
    """Fitted growth law ``n² ∝ N^exponent`` for constant efficiency."""

    exponent: float
    processors: tuple[int, ...]
    problem_sizes: tuple[int, ...]


def isoefficiency_exponent(
    machine: Architecture,
    workload_template: Workload,
    kind: PartitionKind,
    processor_counts: Sequence[int],
    target_efficiency: float = 0.5,
) -> IsoefficiencyFit:
    """Fit the isoefficiency exponent over a processor sweep.

    Expected: ~1 for hypercube/mesh, slightly above 1 for the banyan,
    3 for bus squares, 4 for bus strips.
    """
    if len(processor_counts) < 2:
        raise InvalidParameterError("need at least two processor counts")
    sides = [
        grid_for_efficiency(
            machine, workload_template, kind, p, target_efficiency
        )
        for p in processor_counts
    ]
    log_n2 = np.log([float(s) * s for s in sides])
    log_p = np.log(np.asarray(processor_counts, dtype=float))
    slope = float(np.polyfit(log_p, log_n2, 1)[0])
    return IsoefficiencyFit(
        exponent=slope,
        processors=tuple(processor_counts),
        problem_sizes=tuple(sides),
    )
