"""Problem-side parameters of the model (Section 3).

A :class:`Workload` bundles everything the cycle-time equations need
from the *problem*: grid size ``n`` (the domain is ``n × n``), the
discretization stencil ``S`` (which fixes both ``E(S)`` and ``k(P,S)``),
and the per-flop time ``T_fp`` of one processor.  Machine-side
parameters live in :mod:`repro.machines`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidParameterError
from repro.stencils.perimeter import PartitionKind, perimeters_required
from repro.stencils.stencil import Stencil
from repro.units import MICROSECOND

__all__ = ["Workload", "DEFAULT_T_FLOP"]

#: 1 µs per flop — a 1-MFLOPS processor, the paper's era.  All results of
#: interest are ratios, so this only sets the absolute time scale.
DEFAULT_T_FLOP = MICROSECOND


@dataclass(frozen=True)
class Workload:
    """An ``n × n`` elliptic-PDE iteration workload.

    Attributes
    ----------
    n:
        Grid points per side; the problem size is ``n²``.
    stencil:
        Discretization stencil; supplies ``E(S)`` (flops per point) and
        the perimeter count ``k(P, S)``.
    t_flop:
        ``T_fp``, seconds per floating-point operation.
    """

    n: int
    stencil: Stencil
    t_flop: float = DEFAULT_T_FLOP

    def __post_init__(self) -> None:
        if self.n < 1:
            raise InvalidParameterError(f"grid size must be >= 1, got {self.n}")
        if self.t_flop <= 0:
            raise InvalidParameterError(f"t_flop must be positive, got {self.t_flop}")

    # ----------------------------------------------------------- shortcuts

    @property
    def grid_points(self) -> int:
        """Problem size ``n²``."""
        return self.n * self.n

    @property
    def flops_per_point(self) -> float:
        """``E(S)``."""
        return self.stencil.flops_per_point

    def k(self, kind: PartitionKind) -> int:
        """``k(P, S)`` for this stencil under partition shape ``kind``."""
        return perimeters_required(kind, self.stencil)

    def compute_time(self, area: float) -> float:
        """``t_comp = E(S) · A · T_fp`` for a partition of ``area`` points."""
        if area <= 0:
            raise InvalidParameterError(f"partition area must be positive, got {area}")
        return self.flops_per_point * area * self.t_flop

    def serial_time(self) -> float:
        """One-processor iteration time (no communication is suffered)."""
        return self.compute_time(self.grid_points)

    # -------------------------------------------------------------- variants

    def with_n(self, n: int) -> "Workload":
        """Same problem at a different grid size (scaling sweeps)."""
        return replace(self, n=n)

    def with_stencil(self, stencil: Stencil) -> "Workload":
        return replace(self, stencil=stencil)

    def with_t_flop(self, t_flop: float) -> "Workload":
        return replace(self, t_flop=t_flop)
