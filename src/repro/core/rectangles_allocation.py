"""Allocation restricted to the paper's *working rectangles*.

The continuous optimizer treats partition area as a real number; the
paper's actual decompositions must tile the grid with legal rectangles
(Section 3, Figures 5/6).  This module closes the loop: given the
continuous optimum, pick the closest working rectangle and report how
much the integrality + squareness restriction costs.

The Figure-6 analysis predicts the answer — "the costs obtained are not
far different from costs that are truly achievable" — and the E-FIG6
ablation bench quantifies it (typically well under 5% in cycle time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import optimize_allocation
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.partitioning.rectangles import (
    DEFAULT_PERIMETER_TOLERANCE,
    LegalRectangle,
    closest_working_rectangle,
    working_rectangles,
)
from repro.stencils.perimeter import PartitionKind

__all__ = ["WorkingRectangleAllocation", "optimize_with_working_rectangles"]


@dataclass(frozen=True)
class WorkingRectangleAllocation:
    """A realizable square-partition allocation.

    ``relative_overhead`` is ``(realizable − continuous)/continuous``
    cycle time: the price of insisting on a tileable, nearly-square
    rectangle instead of the ideal real-valued square.
    """

    rectangle: LegalRectangle
    processors: float
    cycle_time: float
    speedup: float
    continuous_cycle_time: float
    relative_overhead: float


def optimize_with_working_rectangles(
    machine: Architecture,
    workload: Workload,
    max_processors: float | None = None,
    tolerance: float = DEFAULT_PERIMETER_TOLERANCE,
    neighbourhood: int = 3,
) -> WorkingRectangleAllocation:
    """Best working rectangle near the continuous square optimum.

    Evaluates the ``neighbourhood`` working rectangles on each side of
    the area-closest candidate (the cycle-time curve is convex, so a
    local scan suffices) and returns the cheapest.  Cycle times use the
    *actual* rectangle area; its perimeter is within the squareness
    tolerance by construction, so the square volume formula applies to
    Figure-6 accuracy.
    """
    if neighbourhood < 0:
        raise InvalidParameterError("neighbourhood must be non-negative")
    continuous = optimize_allocation(
        machine, workload, PartitionKind.SQUARE, max_processors=max_processors
    )
    candidates = working_rectangles(workload.n, tolerance)
    if not candidates:
        raise InvalidParameterError(
            f"grid {workload.n} admits no working rectangles at tol {tolerance}"
        )
    anchor = closest_working_rectangle(workload.n, continuous.area, tolerance)
    idx = candidates.index(anchor)
    lo = max(0, idx - neighbourhood)
    hi = min(len(candidates), idx + neighbourhood + 1)

    best: LegalRectangle | None = None
    best_time = float("inf")
    for rect in candidates[lo:hi]:
        area = float(rect.area)
        if max_processors is not None and workload.grid_points / area > max_processors:
            continue
        if area > workload.grid_points:
            continue
        t = float(machine.cycle_time(workload, PartitionKind.SQUARE, area))
        if t < best_time:
            best, best_time = rect, t
    if best is None:
        raise InvalidParameterError(
            "no working rectangle satisfies the processor cap"
        )
    processors = workload.grid_points / best.area
    return WorkingRectangleAllocation(
        rectangle=best,
        processors=processors,
        cycle_time=best_time,
        speedup=workload.serial_time() / best_time,
        continuous_cycle_time=continuous.cycle_time,
        relative_overhead=(best_time - continuous.cycle_time)
        / continuous.cycle_time,
    )
