"""Optimal processor allocation (the paper's central question).

Given a machine, a workload, and a partition shape, find the partition
area ``A`` (equivalently the processor count ``P = n²/A``) minimizing
the cycle time, subject to a machine-size cap.  The paper's structural
result drives the algorithm:

* **monotone machines** (hypercube, mesh, banyan): ``t_cycle`` decreases
  in ``P`` on ``[2, n²]``, so the optimum is *extremal* — either all
  available processors or just one (when even two processors lose to
  the serial run);
* **buses**: ``t_cycle(A)`` is convex with a possibly *interior*
  optimum; the closed form is clipped into the admissible range and
  compared against the one-processor run.

Continuous optima are the paper's; ``integer=True`` restores
integrality with the paper's bracketing rule (strips: areas are
multiples of ``n``; squares: floor/ceil of the processor count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.optimize import golden_section_minimize
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.bus import BusArchitecture
from repro.stencils.perimeter import PartitionKind

__all__ = ["Allocation", "admissible_area_range", "optimize_allocation"]


@dataclass(frozen=True)
class Allocation:
    """An optimized assignment of the grid to processors."""

    processors: float
    area: float
    cycle_time: float
    speedup: float
    efficiency: float
    #: "one" (serial wins), "all" (machine-size bound), or "interior"
    #: (a strict bus optimum using fewer than the available processors).
    regime: str
    kind: PartitionKind

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise InvalidParameterError("allocation needs at least one processor")


def admissible_area_range(
    workload: Workload, kind: PartitionKind, max_processors: float | None
) -> tuple[float, float]:
    """Feasible continuous partition areas ``[A_min, A_max]``.

    Strips cannot be thinner than one grid row (``A ≥ n``); squares
    bottom out at one point.  A machine-size cap raises the floor to
    ``n²/N``.  The ceiling is the whole grid (one processor).
    """
    n2 = float(workload.grid_points)
    a_min = float(workload.n) if kind is PartitionKind.STRIP else 1.0
    if max_processors is not None:
        if max_processors < 1:
            raise InvalidParameterError("max_processors must be >= 1")
        a_min = max(a_min, n2 / max_processors)
    return (min(a_min, n2), n2)


def _continuous_candidates(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    a_min: float,
    a_max: float,
) -> list[float]:
    """Candidate areas: range endpoints plus any interior optimum."""
    candidates = [a_min, a_max]
    if isinstance(machine, BusArchitecture):
        a_star = machine.optimal_area(workload, kind)
        if a_min < a_star < a_max:
            candidates.append(a_star)
    elif not machine.monotone_in_processors:
        # Unknown non-monotone machine: fall back to a numeric search.
        result = golden_section_minimize(
            lambda a: float(machine.cycle_time(workload, kind, a)), a_min, a_max
        )
        candidates.append(result.x)
    return candidates


def _integer_candidates(
    workload: Workload,
    kind: PartitionKind,
    continuous_area: float,
    a_min: float,
    a_max: float,
) -> list[float]:
    """Feasible integral areas bracketing a continuous optimum.

    Strips: areas are whole numbers of rows, ``A = h·n`` — the paper's
    ``A_l = n·⌊Â/n⌋``, ``A_h = A_l + n`` rule.  Squares: bracket the
    processor count instead (areas ``n²/P`` for integer ``P``), since
    block decompositions exist for every integer ``P``.

    Candidates come back in deterministic floor-then-ceil order, which
    fixes the winner when the two bracketing areas tie exactly on cycle
    time (the optimizer keeps the first strict minimum); the vectorized
    :func:`repro.batch.analysis.optimal_allocation_curve` stacks its
    candidate slots in the same order, so the tie-break is shared.
    """
    n = workload.n
    cands: list[float] = []
    if kind is PartitionKind.STRIP:
        h = continuous_area / n
        for hh in (math.floor(h), math.ceil(h)):
            hh = min(max(hh, 1), n)
            cands.append(float(hh * n))
    else:
        p = workload.grid_points / continuous_area
        for pp in (math.floor(p), math.ceil(p)):
            pp = max(pp, 1)
            cands.append(workload.grid_points / pp)
    deduped = list(dict.fromkeys(cands))
    return [a for a in deduped if a_min - 1e-9 <= a <= a_max + 1e-9] or [continuous_area]


def optimize_allocation(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    max_processors: float | None = None,
    integer: bool = False,
) -> Allocation:
    """Minimize the cycle time over feasible partition areas.

    Parameters
    ----------
    machine, workload, kind:
        The model triple.
    max_processors:
        Machine-size cap ``N``; ``None`` means processors are unlimited
        (the paper's "optimal speedup" regime).
    integer:
        Restore integral allocations via the bracketing rule.

    Returns the best allocation *including* the one-processor option,
    which pays no communication and can win when the network is slow
    relative to the problem (Section 4's third case).
    """
    a_min, a_max = admissible_area_range(workload, kind, max_processors)
    candidates = _continuous_candidates(machine, workload, kind, a_min, a_max)
    if integer:
        refined: list[float] = []
        for a in candidates:
            refined.extend(_integer_candidates(workload, kind, a, a_min, a_max))
        candidates = refined

    serial = workload.serial_time()
    best_area = None
    best_time = math.inf
    for area in candidates:
        t = float(machine.cycle_time(workload, kind, area))
        if t < best_time:
            best_area, best_time = area, t

    # The one-processor run communicates nothing; it is always feasible.
    if serial <= best_time or best_area is None:
        return Allocation(
            processors=1.0,
            area=float(workload.grid_points),
            cycle_time=serial,
            speedup=1.0,
            efficiency=1.0,
            regime="one",
            kind=kind,
        )

    processors = workload.grid_points / best_area
    speedup = serial / best_time
    at_cap = math.isclose(best_area, a_min, rel_tol=1e-9, abs_tol=1e-9)
    regime = "all" if at_cap else "interior"
    return Allocation(
        processors=processors,
        area=best_area,
        cycle_time=best_time,
        speedup=speedup,
        efficiency=speedup / processors,
        regime=regime,
        kind=kind,
    )
