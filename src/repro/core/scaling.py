"""Architecture scaling laws: scaled speedup, Table I, exponent fits.

Two growth regimes from the paper:

* **fixed machine** (Section 4/6): speedup → N as n² → ∞ for every
  architecture — "good speedup by growing the problem" holds;
* **machine grows with the problem** (Sections 4, 6, 7; Table I):
  optimal speedup scales as n² (hypercube/mesh), n²/log n (banyan),
  (n²)^(1/3) (bus, squares), (n²)^(1/4) (bus, strips).

:func:`fit_scaling_exponent` measures the exponent empirically from an
optimal-speedup sweep, which is how the benches check Table I's shape
without trusting the closed forms they are validating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.parameters import Workload
from repro.core.speedup import optimal_speedup
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.hypercube import Hypercube
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = [
    "scaled_speedup_hypercube",
    "scaled_speedup_banyan",
    "table1_optimal_speedup",
    "optimal_speedup_sweep",
    "fit_scaling_exponent",
    "ScalingFit",
]


def scaled_speedup_hypercube(
    machine: Hypercube,
    stencil: Stencil,
    t_flop: float,
    n: int,
    points_per_processor: float,
) -> float:
    """Section 4's scaled speedup: grow N with n² keeping F points each.

    The cycle time is the constant
    ``C = E·F·T_fp + 8·(⌈√F·k/packet⌉·α + β)``, so speedup
    ``E·n²·T_fp / C`` is linear in n².
    """
    if points_per_processor <= 0:
        raise InvalidParameterError("points_per_processor must be positive")
    side = math.sqrt(points_per_processor)
    k = stencil.reach  # square partitions
    per_event = machine.message_time(k * side)
    cycle = stencil.flops_per_point * points_per_processor * t_flop + 8.0 * float(
        per_event
    )
    serial = stencil.flops_per_point * n * n * t_flop
    return serial / cycle


def scaled_speedup_banyan(
    machine: BanyanNetwork,
    stencil: Stencil,
    t_flop: float,
    n: int,
    points_per_processor: float,
) -> float:
    """Section 7's scaled speedup with F fixed: Θ(n²/log n) for squares.

    ``t = 8·k·√F·w·log2(n²/F) + E·F·T_fp``.
    """
    if points_per_processor <= 0:
        raise InvalidParameterError("points_per_processor must be positive")
    processors = n * n / points_per_processor
    if processors < 1:
        raise InvalidParameterError("grid smaller than one processor's share")
    side = math.sqrt(points_per_processor)
    k = stencil.reach
    cycle = 8.0 * k * side * machine.w * max(math.log2(processors), 0.0) + (
        stencil.flops_per_point * points_per_processor * t_flop
    )
    serial = stencil.flops_per_point * n * n * t_flop
    return serial / cycle


def table1_optimal_speedup(
    machine: Architecture, workload: Workload
) -> float:
    """Table I: optimal speedup, square partitions, one point per processor
    where appropriate (hypercube, banyan); bus rows use their interior
    optimum.  All rows are exercised through the generic optimizer so the
    table doubles as an integration test of the whole model stack.
    """
    from repro.machines.bus import BusArchitecture

    if isinstance(machine, BusArchitecture):
        return optimal_speedup(machine, workload, PartitionKind.SQUARE).speedup
    # Monotone machines: one point per processor.
    serial = workload.serial_time()
    cycle = float(machine.cycle_time(workload, PartitionKind.SQUARE, 1.0))
    return serial / cycle


def optimal_speedup_sweep(
    machine: Architecture,
    workload_template: Workload,
    kind: PartitionKind,
    grid_sizes: Sequence[int],
    max_processors: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Optimal speedup at each grid size; returns (n² array, speedup array)."""
    n2 = np.array([float(n) * n for n in grid_sizes])
    sp = np.array(
        [
            optimal_speedup(
                machine, workload_template.with_n(n), kind, max_processors
            ).speedup
            for n in grid_sizes
        ]
    )
    return n2, sp


@dataclass(frozen=True)
class ScalingFit:
    """Power-law fit ``speedup ≈ C · (n²)^exponent`` over a sweep."""

    exponent: float
    log_constant: float
    residual: float


def fit_scaling_exponent(problem_sizes: Sequence[float], speedups: Sequence[float]) -> ScalingFit:
    """Least-squares slope of log(speedup) against log(n²).

    For a pure power law the slope recovers the exponent exactly; for
    the banyan's ``n²/log n`` the fitted slope sits slightly below 1 and
    approaches it from below as the sweep widens.
    """
    x = np.log(np.asarray(problem_sizes, dtype=float))
    y = np.log(np.asarray(speedups, dtype=float))
    if x.size < 2:
        raise InvalidParameterError("need at least two points to fit an exponent")
    coeffs, residuals, *_ = np.polyfit(x, y, 1, full=True)
    resid = float(residuals[0]) if len(residuals) else 0.0
    return ScalingFit(exponent=float(coeffs[0]), log_constant=float(coeffs[1]), residual=resid)
