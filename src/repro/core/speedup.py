"""Speedup and optimal-speedup calculations (equations (5)–(6), Table I).

Speedup compares against the one-processor run, which suffers no
communication: ``S = t_serial / t_cycle``.  Fixed-machine speedups
approach ``N`` as the grid grows (the "folk theorem" the paper
confirms); unlimited-machine *optimal* speedups grow with exponents set
by the architecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import optimize_allocation
from repro.core.cycle_time import cycle_time_vs_processors
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "speedup_at_processors",
    "speedup_curve",
    "fixed_machine_speedup",
    "optimal_speedup",
    "OptimalSpeedupResult",
    "closed_form_optimal_speedup_sync_bus",
    "closed_form_optimal_speedup_async_bus",
]


def speedup_at_processors(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    processors: float,
) -> float:
    """``S(P) = t_serial / t_cycle(n²/P)``; ``S(1) = 1`` by definition."""
    if processors < 1:
        raise InvalidParameterError("processors must be >= 1")
    if processors == 1:
        return 1.0
    t = float(machine.cycle_time(workload, kind, workload.grid_points / processors))
    return workload.serial_time() / t


def speedup_curve(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    processors: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`speedup_at_processors` over a processor sweep."""
    times = cycle_time_vs_processors(machine, workload, kind, np.asarray(processors))
    return workload.serial_time() / times


def fixed_machine_speedup(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    n_processors: int,
) -> float:
    """Speedup when the grid is spread across all ``n_processors``.

    This is the paper's equation-(5)-style quantity: no optimization,
    just ``A = n²/N``.  Use :func:`optimal_speedup` for the optimized
    version (which may use fewer processors on a bus).
    """
    return speedup_at_processors(machine, workload, kind, float(n_processors))


@dataclass(frozen=True)
class OptimalSpeedupResult:
    """Best achievable speedup and the allocation achieving it."""

    speedup: float
    processors: float
    area: float
    cycle_time: float
    regime: str


def optimal_speedup(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    max_processors: float | None = None,
    integer: bool = False,
) -> OptimalSpeedupResult:
    """Largest possible speedup for the problem (the paper's headline).

    With ``max_processors=None`` the machine grows with the problem;
    this is the regime in which hypercubes are Θ(n²), banyans
    Θ(n²/log n), and buses Θ((n²)^(1/3)) / Θ((n²)^(1/4)).
    """
    alloc = optimize_allocation(
        machine, workload, kind, max_processors=max_processors, integer=integer
    )
    return OptimalSpeedupResult(
        speedup=alloc.speedup,
        processors=alloc.processors,
        area=alloc.area,
        cycle_time=alloc.cycle_time,
        regime=alloc.regime,
    )


# --------------------------------------------------------------------------
# Closed forms for the bus optimal speedups (Section 6), used to validate
# the numeric path and to regenerate Table I.
# --------------------------------------------------------------------------


def closed_form_optimal_speedup_sync_bus(
    machine: SynchronousBus, workload: Workload, kind: PartitionKind
) -> float:
    """Unlimited-processor synchronous-bus optimal speedup.

    Strips: ``S* = E·n²·T / (2·sqrt(E·T·v·k·b·n³) + v·k·c·n)`` with
    ``v = 4`` (read+write) — proportional to ``(n²)^(1/4)`` for c = 0.
    Squares (c = 0): ``S* = E·n²·T / (3·(E·T)^(1/3)·((v/2)·k·b·n²)^(2/3))``
    — proportional to ``(n²)^(1/3)``.
    """
    et = workload.flops_per_point * workload.t_flop
    serial = workload.serial_time()
    n = workload.n
    k = workload.k(kind)
    v = 2.0 * (2 if machine.volume_mode == "read_write" else 1)
    if kind is PartitionKind.STRIP:
        t_star = 2.0 * math.sqrt(et * v * k * machine.b * n**3) + v * k * machine.c * n
        return serial / t_star
    if machine.c != 0.0:
        raise InvalidParameterError(
            "closed-form square optimal speedup requires c = 0; "
            "use optimal_speedup() for the general case"
        )
    t_star = 3.0 * et ** (1.0 / 3.0) * (v * k * machine.b * n**2) ** (2.0 / 3.0)
    return serial / t_star


def closed_form_optimal_speedup_async_bus(
    machine: AsynchronousBus, workload: Workload, kind: PartitionKind
) -> float:
    """Unlimited-processor asynchronous-bus optimal speedup.

    Strips: ``t* = 2·sqrt(2·k·b·E·T·n³) + 2·k·c·n`` — a factor √2 better
    than synchronous.  Squares (c = 0):
    ``t* = 2·(E·T)^(1/3)·(4·k·b·n²)^(2/3)`` — 1.5× the synchronous
    speedup (Section 6.2).
    """
    et = workload.flops_per_point * workload.t_flop
    serial = workload.serial_time()
    n = workload.n
    k = workload.k(kind)
    if kind is PartitionKind.STRIP:
        t_star = 2.0 * math.sqrt(2.0 * k * machine.b * et * n**3) + 2.0 * k * machine.c * n
        return serial / t_star
    # Squares: the optimal side is where compute meets the write backlog
    # (c does not move it; the c-term below is the read-phase overhead at
    # that side, exact for c = 0 and the paper's approximation otherwise).
    s_hat = (4.0 * k * machine.b * n**2 / et) ** (1.0 / 3.0)
    t_star = 2.0 * et * s_hat**2 + 4.0 * k * machine.c * s_hat
    return serial / t_star
