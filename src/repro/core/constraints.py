"""Allocation constraints: memory capacity and processor availability.

Section 3 optimizes "subject to memory constraints and processor
availability constraints", and Section 4 notes that "if memory
limitations prohibit [one processor], then the computation should be
spread maximally".  This module materializes those constraints:

* :class:`MachineSize` — how many processors exist, and how many grid
  points (plus ghost/boundary copies) fit in one processor's memory;
* :func:`constrained_allocation` — the allocation optimizer with both
  constraints applied, reporting when memory forces parallelism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import Allocation, optimize_allocation
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind, boundary_points

__all__ = ["MachineSize", "min_processors_for_memory", "constrained_allocation"]


@dataclass(frozen=True)
class MachineSize:
    """Physical machine limits.

    ``memory_points`` is the number of grid-point values one processor
    can hold, counting the partition itself plus the ghost copies of
    ``k`` perimeters of neighbour data it must import.  ``None`` means
    memory is not a binding constraint.
    """

    n_processors: int
    memory_points: float | None = None

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise InvalidParameterError("machine needs at least one processor")
        if self.memory_points is not None and self.memory_points < 4:
            raise InvalidParameterError(
                "memory must hold at least a few grid points"
            )


def _memory_footprint(
    workload: Workload, kind: PartitionKind, area: float
) -> float:
    """Points resident on one processor: partition + imported perimeters."""
    k = workload.k(kind)
    return area + boundary_points(kind, max(int(area), 1), workload.n, k)


def min_processors_for_memory(
    workload: Workload, kind: PartitionKind, machine_size: MachineSize
) -> int:
    """Fewest processors whose partitions (with halos) fit in memory.

    Returns 1 when memory is unconstrained.  Raises when even one point
    per processor overflows (the problem simply does not fit).
    """
    cap = machine_size.memory_points
    if cap is None:
        return 1
    n2 = workload.grid_points

    def fits(processors: int) -> bool:
        area = n2 / processors
        return _memory_footprint(workload, kind, area) <= cap

    if fits(1):
        return 1
    if not fits(machine_size.n_processors):
        raise InvalidParameterError(
            f"problem needs more memory than {machine_size.n_processors} "
            f"processors of {cap:g} points provide"
        )
    lo, hi = 1, machine_size.n_processors
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class ConstrainedAllocation:
    """An allocation plus which constraints were active."""

    allocation: Allocation
    min_processors: int
    memory_bound: bool

    @property
    def processors(self) -> float:
        return self.allocation.processors

    @property
    def speedup(self) -> float:
        return self.allocation.speedup


def constrained_allocation(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    machine_size: MachineSize,
    integer: bool = False,
) -> ConstrainedAllocation:
    """Optimize under both machine-size and memory constraints.

    When memory rules out small processor counts, the admissible area
    range shrinks from above; in particular the serial fallback
    disappears — Section 4's "spread maximally" case.
    """
    p_min = min_processors_for_memory(workload, kind, machine_size)
    base = optimize_allocation(
        machine,
        workload,
        kind,
        max_processors=machine_size.n_processors,
        integer=integer,
    )
    if base.processors >= p_min:
        return ConstrainedAllocation(
            allocation=base, min_processors=p_min, memory_bound=False
        )

    # Memory forbids the unconstrained optimum: clamp the area ceiling.
    area_cap = workload.grid_points / p_min
    candidates = [area_cap, workload.grid_points / machine_size.n_processors]
    if integer and kind is PartitionKind.STRIP:
        candidates = [
            float(max(1, math.floor(a / workload.n)) * workload.n)
            for a in candidates
        ]
    best_area = min(
        (a for a in candidates if a <= area_cap + 1e-9),
        key=lambda a: float(machine.cycle_time(workload, kind, a)),
    )
    cycle = float(machine.cycle_time(workload, kind, best_area))
    processors = workload.grid_points / best_area
    speedup = workload.serial_time() / cycle
    forced = Allocation(
        processors=processors,
        area=best_area,
        cycle_time=cycle,
        speedup=speedup,
        efficiency=speedup / processors,
        regime="all" if processors >= machine_size.n_processors * (1 - 1e-9) else "interior",
        kind=kind,
    )
    return ConstrainedAllocation(
        allocation=forced, min_processors=p_min, memory_bound=True
    )
