"""Hardware-leverage analysis (Section 6.1's "what should we speed up?").

Starting from an *optimized* configuration, how much does doubling one
hardware parameter improve the re-optimized cycle time?  The paper's
closed-form answers at the bus optimum:

* strips (c ≈ 0): doubling the bus **or** the flop speed each give a
  factor ``1/√2`` — they enter the optimized time symmetrically;
* squares (c = 0): doubling the bus gives 0.63 (``(1/2)^(2/3)``),
  doubling the flop speed 0.79 (``(1/2)^(1/3)``) — communication is
  twice the computation at the optimum, so the bus has more leverage;
* when ``c`` dominates (c ≫ b, strips), bus speed barely matters but
  halving ``c`` cuts the communication term linearly.

:func:`leverage_factor` measures these ratios through the generic
optimizer so they hold for any machine, not just the closed-form cases.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.allocation import optimize_allocation
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind

__all__ = ["LeverageReport", "leverage_factor", "leverage_report"]

_MACHINE_FIELDS = ("b", "c", "alpha", "beta", "w")
_WORKLOAD_FIELDS = ("t_flop",)


@dataclass(frozen=True)
class LeverageReport:
    """Re-optimized cycle-time ratios after speeding one component up 2×."""

    baseline_cycle_time: float
    #: parameter name -> (new optimal cycle time) / (old optimal cycle time)
    factors: dict[str, float]


def _speed_up_parameter(
    machine: Architecture, workload: Workload, parameter: str, factor: float
) -> tuple[Architecture, Workload]:
    """Return copies with ``parameter`` scaled by ``1/factor`` (faster)."""
    if factor <= 0:
        raise InvalidParameterError("speed-up factor must be positive")
    if parameter in _WORKLOAD_FIELDS:
        return machine, workload.with_t_flop(workload.t_flop / factor)
    if parameter in _MACHINE_FIELDS and hasattr(machine, parameter):
        new_machine = dataclasses.replace(
            machine, **{parameter: getattr(machine, parameter) / factor}
        )
        return new_machine, workload
    raise InvalidParameterError(
        f"machine {machine.name!r} has no tunable parameter {parameter!r}"
    )


def leverage_factor(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    parameter: str,
    factor: float = 2.0,
    max_processors: float | None = None,
) -> float:
    """``t*_new / t*_old`` after making ``parameter`` ``factor``× faster.

    Both sides re-optimize the allocation, matching the paper's framing:
    "suppose that we have optimized performance … and wish to increase
    processor or bus speed".  Values below 1 are improvements; the
    closed-form expectations are 1/√2 ≈ 0.707 (strips, b or t_flop) and
    0.63 / 0.79 (squares, b / t_flop).
    """
    base = optimize_allocation(machine, workload, kind, max_processors)
    fast_machine, fast_workload = _speed_up_parameter(machine, workload, parameter, factor)
    fast = optimize_allocation(fast_machine, fast_workload, kind, max_processors)
    return fast.cycle_time / base.cycle_time


def leverage_report(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    parameters: tuple[str, ...] = ("b", "c", "t_flop"),
    factor: float = 2.0,
    max_processors: float | None = None,
) -> LeverageReport:
    """Leverage factors for several parameters at once.

    Parameters the machine does not expose are skipped silently (e.g.
    asking a hypercube about bus cycle time ``b``), so one report call
    works across architectures.
    """
    base = optimize_allocation(machine, workload, kind, max_processors)
    factors: dict[str, float] = {}
    for p in parameters:
        if p in _WORKLOAD_FIELDS or hasattr(machine, p):
            if p in _MACHINE_FIELDS and getattr(machine, p, 0.0) == 0.0:
                continue  # speeding up a zero-cost component is meaningless
            factors[p] = leverage_factor(
                machine, workload, kind, p, factor, max_processors
            )
    return LeverageReport(baseline_cycle_time=base.cycle_time, factors=factors)
