"""Numeric optimization utilities for the cycle-time curves.

Every architecture's ``t_cycle(A)`` in this model is convex on the
admissible range (the paper proves this case by case), so minimization
needs nothing heavier than golden-section search plus careful endpoint
handling.  These routines exist to *cross-check* the closed forms in
:mod:`repro.machines` and to handle machines or modes with no closed
form (e.g. synchronous bus squares with c > 0 under integer
constraints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "golden_section_minimize",
    "brute_force_minimize",
    "bracketing_integers",
    "is_discretely_convex",
    "ScalarMinimum",
]

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0  # 1/φ ≈ 0.618


@dataclass(frozen=True)
class ScalarMinimum:
    """Result of a scalar minimization: location and value."""

    x: float
    value: float


def golden_section_minimize(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> ScalarMinimum:
    """Minimize a unimodal ``f`` on ``[lo, hi]`` by golden-section search.

    ``tol`` is relative to the interval width.  Convexity of the cycle
    times guarantees unimodality; for safety the endpoints are also
    evaluated and can win (the minimum may sit on the boundary when the
    unconstrained optimum is clipped).
    """
    if not lo < hi:
        raise InvalidParameterError(f"need lo < hi, got [{lo}, {hi}]")
    a, b = lo, hi
    c = b - (b - a) * _INV_PHI
    d = a + (b - a) * _INV_PHI
    fc, fd = f(c), f(d)
    for _ in range(max_iter):
        if (b - a) <= tol * max(1.0, abs(a) + abs(b)):
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - (b - a) * _INV_PHI
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + (b - a) * _INV_PHI
            fd = f(d)
    x_mid = (a + b) / 2.0
    candidates = [(lo, f(lo)), (hi, f(hi)), (x_mid, f(x_mid))]
    x, val = min(candidates, key=lambda t: t[1])
    return ScalarMinimum(x=x, value=val)


def brute_force_minimize(
    f: Callable[[float], float], xs: Iterable[float]
) -> ScalarMinimum:
    """Exact minimum over an explicit candidate set (integer feasibility).

    A single candidate is returned as-is (the admissible range can
    collapse to one point, e.g. ``max_processors = 1``); an empty set
    and an all-NaN objective are distinct errors, so a failed model
    evaluation cannot masquerade as an empty range.
    """
    best_x: float | None = None
    best_v = math.inf
    evaluated = 0
    for x in xs:
        evaluated += 1
        v = f(x)
        if math.isnan(v):
            continue
        if best_x is None or v < best_v:
            best_x, best_v = x, v
    if best_x is None:
        if evaluated:
            raise InvalidParameterError(
                f"objective returned NaN for all {evaluated} candidates"
            )
        raise InvalidParameterError("empty candidate set")
    return ScalarMinimum(x=best_x, value=best_v)


def bracketing_integers(x: float, lo: int, hi: int) -> list[int]:
    """The feasible integers surrounding a continuous optimum.

    Returns ``{floor(x), ceil(x)}`` clamped into ``[lo, hi]``, which is
    sufficient to restore integrality for a convex objective (the
    paper's ``A_l = n·⌊Â/n⌋, A_h = A_l + n`` rule is the same idea with
    a stride).  Degenerate ranges are handled explicitly rather than by
    float rounding: ``lo == hi`` yields that single point whatever ``x``
    is, an inverted range is an error, and a non-finite ``x`` (a
    degenerate closed form evaluated at the boundary) clamps to the
    nearest endpoint instead of propagating through ``floor``/``ceil``.
    """
    if lo > hi:
        raise InvalidParameterError(
            f"empty integer range [{lo}, {hi}]: no feasible bracketing candidates"
        )
    if lo == hi:
        return [lo]
    if math.isnan(x):
        raise InvalidParameterError(
            "cannot bracket NaN; the continuous optimum is undefined"
        )
    if math.isinf(x):
        return [lo] if x < 0 else [hi]
    cands = {int(math.floor(x)), int(math.ceil(x))}
    return sorted({min(max(c, lo), hi) for c in cands})


def is_discretely_convex(values: Sequence[float], rel_tol: float = 1e-9) -> bool:
    """Check second differences of a sampled curve are non-negative.

    Used by the property tests to verify the paper's convexity claims on
    realistic parameter grids (sampling, not proof).
    """
    v = np.asarray(values, dtype=float)
    if v.size < 3:
        return True
    second = v[2:] - 2.0 * v[1:-1] + v[:-2]
    scale = np.maximum(np.abs(v[1:-1]), 1.0)
    return bool(np.all(second >= -rel_tol * scale))
