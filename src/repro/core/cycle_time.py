"""Cycle-time curves and phase breakdowns over partition-size sweeps.

Thin, array-oriented wrappers over the machine models: evaluate
``t_cycle`` along a sweep of areas or processor counts, split it into
compute/communication phases, and locate the communication-bound
crossover.  All heavy lifting lives in :mod:`repro.machines`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "CyclePhases",
    "cycle_time_curve",
    "cycle_time_vs_processors",
    "phase_breakdown",
    "communication_fraction",
]


@dataclass(frozen=True)
class CyclePhases:
    """One cycle split into its compute and communication parts."""

    compute: float
    communication: float

    @property
    def total(self) -> float:
        return self.compute + self.communication

    @property
    def communication_fraction(self) -> float:
        return self.communication / self.total if self.total > 0 else 0.0


def cycle_time_curve(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    areas: np.ndarray,
) -> np.ndarray:
    """``t_cycle`` evaluated over an array of partition areas."""
    areas = np.asarray(areas, dtype=float)
    return np.asarray(machine.cycle_time(workload, kind, areas), dtype=float)


def cycle_time_vs_processors(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    processors: np.ndarray,
) -> np.ndarray:
    """``t_cycle`` over processor counts; ``P = 1`` maps to the serial time.

    One processor suffers no communication (Section 4), a special case
    the area-based formulas cannot express because their volumes assume
    at least one partition boundary.
    """
    processors = np.asarray(processors, dtype=float)
    if np.any(processors < 1):
        raise InvalidParameterError("processor counts must be >= 1")
    areas = workload.grid_points / processors
    out = cycle_time_curve(machine, workload, kind, areas)
    serial = workload.serial_time()
    return np.where(processors == 1.0, serial, out)


def phase_breakdown(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    area: float,
) -> CyclePhases:
    """Split one cycle at the given partition area into phases.

    For overlap-capable machines (asynchronous bus) "communication" is
    the non-overlapped remainder: ``t_cycle − t_comp``.
    """
    compute = workload.compute_time(area)
    total = float(machine.cycle_time(workload, kind, area))
    return CyclePhases(compute=compute, communication=max(total - compute, 0.0))


def communication_fraction(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    areas: np.ndarray,
) -> np.ndarray:
    """Fraction of the cycle spent off-compute along an area sweep."""
    areas = np.asarray(areas, dtype=float)
    total = cycle_time_curve(machine, workload, kind, areas)
    compute = workload.flops_per_point * areas * workload.t_flop
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.clip((total - compute) / total, 0.0, 1.0)
    return frac
