"""Crossover analysis: where one design choice overtakes another.

The paper's qualitative claims — squares beat strips for large
problems, hypercubes beat banyans only through the log factor, buses
fall behind everything as problems grow — all reduce to crossover
points of speedup curves.  These helpers locate them numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.parameters import Workload
from repro.core.speedup import optimal_speedup
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "speedup_ratio",
    "strip_square_ratio",
    "find_crossover_grid_size",
    "CrossoverResult",
]


def speedup_ratio(
    machine_a: Architecture,
    machine_b: Architecture,
    workload: Workload,
    kind: PartitionKind,
    max_processors: float | None = None,
) -> float:
    """Optimal-speedup ratio A/B at one problem size (>1 means A wins)."""
    sa = optimal_speedup(machine_a, workload, kind, max_processors).speedup
    sb = optimal_speedup(machine_b, workload, kind, max_processors).speedup
    return sa / sb


def strip_square_ratio(
    machine: Architecture,
    workload: Workload,
    max_processors: float | None = None,
) -> float:
    """Optimal-speedup ratio strips/squares (<1 confirms squares win)."""
    s_strip = optimal_speedup(
        machine, workload, PartitionKind.STRIP, max_processors
    ).speedup
    s_square = optimal_speedup(
        machine, workload, PartitionKind.SQUARE, max_processors
    ).speedup
    return s_strip / s_square


@dataclass(frozen=True)
class CrossoverResult:
    """Grid side where a predicate first becomes true (and stays true)."""

    n: int
    value_before: float
    value_after: float


def find_crossover_grid_size(
    metric: Callable[[int], float],
    threshold: float = 1.0,
    n_lo: int = 2,
    n_hi: int = 1 << 16,
) -> CrossoverResult:
    """Smallest ``n`` in ``[n_lo, n_hi]`` with ``metric(n) >= threshold``.

    ``metric`` must be monotone non-decreasing in ``n`` over the search
    range (true for the speedup ratios of interest: larger problems
    amortize fixed costs).  Raises when the threshold is never reached.
    """
    if n_lo >= n_hi:
        raise InvalidParameterError("need n_lo < n_hi")
    if metric(n_hi) < threshold:
        raise InvalidParameterError(
            f"metric never reaches {threshold} up to n = {n_hi}"
        )
    if metric(n_lo) >= threshold:
        return CrossoverResult(n=n_lo, value_before=math.nan, value_after=metric(n_lo))
    lo, hi = n_lo, n_hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if metric(mid) >= threshold:
            hi = mid
        else:
            lo = mid
    return CrossoverResult(n=hi, value_before=metric(lo), value_after=metric(hi))
