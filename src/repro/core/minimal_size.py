"""Smallest grid that gainfully uses all N processors (Figure 7).

On a bus, the optimal allocation uses *fewer* than the available ``N``
processors when the problem is too small — the paper's inequalities:

* synchronous strips (4):   fewer than N  ⟺  ``N²·b/T_fp > E·n / (4k)``
* asynchronous strips:      fewer than N  ⟺  ``N²·b/T_fp > E·n / (2k)``
* squares, c = 0 (6):       fewer than N  ⟺  ``N^(3/2)·b/T_fp > E·n / (4k)``
  (identical for synchronous and asynchronous — the optimal side is
  the same)

Treating each as an equality and solving for ``n`` gives the minimal
problem size; Figure 7 plots ``log2(n²_min)`` against ``N``.  Strips
always demand a larger problem than squares (N² vs N^(3/2)), one of the
paper's arguments for square partitions.

Coefficients here are for the default read+write volume accounting;
:func:`minimal_grid_size_numeric` works for any machine/mode by asking
the optimizer directly, and the tests check both paths agree.
"""

from __future__ import annotations

import math

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.bus import BusArchitecture, SynchronousBus
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "uses_all_processors",
    "minimal_grid_side",
    "minimal_problem_size",
    "minimal_grid_size_numeric",
    "max_useful_processors",
]


def _volume_coefficient(machine: BusArchitecture, kind: PartitionKind) -> float:
    """The ``v·k``-side constant in the closed-form thresholds."""
    sync = isinstance(machine, SynchronousBus)
    if kind is PartitionKind.STRIP:
        if sync:
            return 4.0 if machine.volume_mode == "read_write" else 2.0
        return 2.0  # asynchronous strips: write backlog only
    # Squares: sync (c=0) and async share the optimal side.
    if sync:
        return 4.0 if machine.volume_mode == "read_write" else 2.0
    return 4.0


def uses_all_processors(
    machine: BusArchitecture,
    workload: Workload,
    kind: PartitionKind,
    n_processors: int,
) -> bool:
    """Inequalities (4)/(6): does the optimum spread over all N processors?

    True when the continuous optimal area is at most ``n²/N``; the
    closed forms assume ``c = 0`` for squares (conservative otherwise —
    positive ``c`` shrinks the synchronous optimal partition).
    """
    if n_processors < 1:
        raise InvalidParameterError("n_processors must be >= 1")
    optimal = machine.optimal_area(workload, kind)
    return optimal <= workload.grid_points / n_processors


def minimal_grid_side(
    machine: BusArchitecture,
    stencil_k: int,
    flops_per_point: float,
    t_flop: float,
    n_processors: int,
    kind: PartitionKind,
    synchronous: bool | None = None,
) -> float:
    """Closed-form minimal ``n`` using all N processors (Figure 7's y-axis
    is ``log2(n²)`` of this value).

    * strips:  ``n_min = v·k·b·N² / (E·T_fp)``  (v = 4 sync, 2 async)
    * squares: ``n_min = v·k·b·N^(3/2) / (E·T_fp)``  (v = 4, c = 0)
    """
    if n_processors < 1:
        raise InvalidParameterError("n_processors must be >= 1")
    v = _volume_coefficient(machine, kind)
    et = flops_per_point * t_flop
    if kind is PartitionKind.STRIP:
        return v * stencil_k * machine.b * n_processors**2 / et
    return v * stencil_k * machine.b * n_processors**1.5 / et


def minimal_problem_size(
    machine: BusArchitecture,
    workload_template: Workload,
    kind: PartitionKind,
    n_processors: int,
) -> float:
    """``n²_min`` for the template's stencil/flop-time on this machine."""
    n_min = minimal_grid_side(
        machine,
        workload_template.k(kind),
        workload_template.flops_per_point,
        workload_template.t_flop,
        n_processors,
        kind,
    )
    return n_min * n_min


def minimal_grid_size_numeric(
    machine: Architecture,
    workload_template: Workload,
    kind: PartitionKind,
    n_processors: int,
    n_max: int = 1 << 20,
) -> int:
    """Smallest integer ``n`` whose *unconstrained* optimal area fits all N.

    Matches the paper's Figure-7 criterion — "the minimal problem size
    which uses all N processors" is where the interior optimum reaches
    the ``n²/N`` boundary — but finds the optimum by golden-section
    search on the cycle-time curve instead of the closed form, so the
    two paths check each other.  (Profitability against the serial run
    is a separate question the paper treats in the allocation analysis,
    not in Figure 7.)
    """
    from repro.core.optimize import golden_section_minimize

    def all_used(n: int) -> bool:
        workload = workload_template.with_n(n)
        a_floor = float(n) if kind is PartitionKind.STRIP else 1.0
        a_ceil = float(workload.grid_points)
        best = golden_section_minimize(
            lambda a: float(machine.cycle_time(workload, kind, a)),
            a_floor,
            a_ceil,
            tol=1e-12,
        )
        return best.x <= workload.grid_points / n_processors * (1.0 + 1e-6)

    lo, hi = n_processors, n_max  # need at least one row/point per processor
    if not all_used(hi):
        raise InvalidParameterError(
            f"even n = {n_max} does not use all {n_processors} processors"
        )
    if all_used(lo):
        return lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if all_used(mid):
            hi = mid
        else:
            lo = mid
    return hi


def max_useful_processors(
    machine: BusArchitecture,
    workload: Workload,
    kind: PartitionKind,
) -> float:
    """Largest N for which the optimum still spreads over all N.

    Inverts the Figure-7 relation: for the Section-6.1 anchor this is
    14.0 (5-point) / 22.2 (9-point) on a 256×256 grid with squares.
    """
    v = _volume_coefficient(machine, kind)
    k = workload.k(kind)
    et = workload.flops_per_point * workload.t_flop
    ratio = et * workload.n / (v * k * machine.b)
    if kind is PartitionKind.STRIP:
        return math.sqrt(ratio)
    return ratio ** (2.0 / 3.0)
