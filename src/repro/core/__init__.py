"""The paper's analytical model: cycle times, allocation, speedup laws."""

from repro.core.allocation import (
    Allocation,
    admissible_area_range,
    optimize_allocation,
)
from repro.core.constraints import (
    ConstrainedAllocation,
    MachineSize,
    constrained_allocation,
    min_processors_for_memory,
)
from repro.core.crossover import (
    CrossoverResult,
    find_crossover_grid_size,
    speedup_ratio,
    strip_square_ratio,
)
from repro.core.cycle_time import (
    CyclePhases,
    communication_fraction,
    cycle_time_curve,
    cycle_time_vs_processors,
    phase_breakdown,
)
from repro.core.isoefficiency import (
    IsoefficiencyFit,
    grid_for_efficiency,
    isoefficiency_exponent,
)
from repro.core.leverage import LeverageReport, leverage_factor, leverage_report
from repro.core.minimal_size import (
    max_useful_processors,
    minimal_grid_side,
    minimal_grid_size_numeric,
    minimal_problem_size,
    uses_all_processors,
)
from repro.core.optimize import (
    ScalarMinimum,
    bracketing_integers,
    brute_force_minimize,
    golden_section_minimize,
    is_discretely_convex,
)
from repro.core.parameters import DEFAULT_T_FLOP, Workload
from repro.core.rectangles_allocation import (
    WorkingRectangleAllocation,
    optimize_with_working_rectangles,
)
from repro.core.scaling import (
    ScalingFit,
    fit_scaling_exponent,
    optimal_speedup_sweep,
    scaled_speedup_banyan,
    scaled_speedup_hypercube,
    table1_optimal_speedup,
)
from repro.core.sensitivity import (
    ElasticityProfile,
    elasticity,
    elasticity_profile,
)
from repro.core.speedup import (
    OptimalSpeedupResult,
    closed_form_optimal_speedup_async_bus,
    closed_form_optimal_speedup_sync_bus,
    fixed_machine_speedup,
    optimal_speedup,
    speedup_at_processors,
    speedup_curve,
)

__all__ = [
    "Allocation",
    "ConstrainedAllocation",
    "CrossoverResult",
    "CyclePhases",
    "DEFAULT_T_FLOP",
    "ElasticityProfile",
    "IsoefficiencyFit",
    "LeverageReport",
    "MachineSize",
    "OptimalSpeedupResult",
    "ScalarMinimum",
    "ScalingFit",
    "Workload",
    "WorkingRectangleAllocation",
    "admissible_area_range",
    "bracketing_integers",
    "brute_force_minimize",
    "closed_form_optimal_speedup_async_bus",
    "closed_form_optimal_speedup_sync_bus",
    "communication_fraction",
    "constrained_allocation",
    "cycle_time_curve",
    "elasticity",
    "elasticity_profile",
    "cycle_time_vs_processors",
    "find_crossover_grid_size",
    "fit_scaling_exponent",
    "grid_for_efficiency",
    "isoefficiency_exponent",
    "fixed_machine_speedup",
    "golden_section_minimize",
    "is_discretely_convex",
    "leverage_factor",
    "leverage_report",
    "max_useful_processors",
    "minimal_grid_side",
    "minimal_grid_size_numeric",
    "min_processors_for_memory",
    "minimal_problem_size",
    "optimal_speedup",
    "optimal_speedup_sweep",
    "optimize_allocation",
    "optimize_with_working_rectangles",
    "phase_breakdown",
    "scaled_speedup_banyan",
    "scaled_speedup_hypercube",
    "speedup_at_processors",
    "speedup_curve",
    "speedup_ratio",
    "strip_square_ratio",
    "table1_optimal_speedup",
    "uses_all_processors",
]
