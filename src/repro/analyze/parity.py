"""parity-coverage: every public closed form has a vectorized twin + test.

The repo's correctness story (ROADMAP, PR 4/5) is *dual implementation*:
each closed form from the paper exists once as an audited scalar
function in ``repro.core``/``repro.machines`` and once as a vectorized
batch twin, tied together by bit-equality tests.  That story decays
silently — someone adds a scalar function, the batch tier grows a hole,
and sweeps fall back to slow paths or (worse) a twin drifts without a
test noticing.

This rule makes the pairing a checked artifact:

* the **universe** is every function exported via ``__all__`` from the
  ``repro.core`` and ``repro.sim`` submodules (the event-level
  simulator's closed forms are paired with their batched twins in
  ``repro.batch.sim`` the same way the analysis tier is);
* each must be **paired** (its registered twin exists in the tree and
  some test file exercises the twin by name), an **exempt** entry with
  a recorded reason (scalar optimizers, array-native functions,
  single-point diagnostics), or itself a **twin**;
* anything unaccounted for is a finding, as is a registered twin that
  no longer exists or is never mentioned by a test;
* on the machines side, every ``*_grid`` method must shadow a scalar
  method of the same name — a grid method without its scalar
  counterpart has nothing to be bit-equal *to*.

The full pairing is also published as the ``parity coverage`` table in
``repro lint`` output and ``results/LINT.json``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Mapping

from .framework import Finding, Project, Rule, register_rule

__all__ = ["ParityRule", "PAIRS", "EXEMPT"]

#: scalar closed form -> name of its vectorized twin (looked up anywhere
#: in the project tree; twins live in repro.batch.* or alongside the
#: scalar in repro.core).
PAIRS: dict[str, str] = {
    "admissible_area_range": "_admissible_range_grid",
    "optimize_allocation": "optimal_allocation_curve",
    "speedup_ratio": "speedup_ratio_curve",
    "strip_square_ratio": "strip_square_ratio_curve",
    "find_crossover_grid_size": "find_crossover_grid_size_batch",
    "grid_for_efficiency": "grid_for_efficiency_curve",
    "isoefficiency_exponent": "isoefficiency_exponent_grid",
    "uses_all_processors": "uses_all_processors_curve",
    "minimal_grid_side": "minimal_grid_side_curve",
    "minimal_problem_size": "minimal_problem_size_curve",
    "max_useful_processors": "max_useful_processors_curve",
    "scaled_speedup_hypercube": "scaled_speedup_hypercube_curve",
    "scaled_speedup_banyan": "scaled_speedup_banyan_curve",
    "table1_optimal_speedup": "table1_speedup_curve",
    "optimal_speedup_sweep": "optimal_speedup_curve",
    "optimal_speedup": "optimal_speedup_curve",
    "speedup_at_processors": "speedup_curve",
    "fixed_machine_speedup": "speedup_curve",
    "closed_form_optimal_speedup_sync_bus": (
        "closed_form_optimal_speedup_sync_bus_curve"
    ),
    "closed_form_optimal_speedup_async_bus": (
        "closed_form_optimal_speedup_async_bus_curve"
    ),
    # Event-level simulator -> lockstep replica tier (repro.batch.sim).
    "simulate_iteration": "simulate_replicas",
    "simulate_replica": "simulate_replicas",
    "uniform01": "uniform01_grid",
    "jitter_factors": "jitter_factor_grid",
}

#: scalar closed form -> why it deliberately has no vectorized twin.
EXEMPT: dict[str, str] = {
    "golden_section_minimize": "generic scalar optimizer; no parameter axis",
    "brute_force_minimize": "generic scalar optimizer; no parameter axis",
    "bracketing_integers": "generic scalar optimizer helper; no parameter axis",
    "is_discretely_convex": "generic scalar predicate; no parameter axis",
    "minimal_grid_size_numeric": (
        "numeric bisection validator of the minimal_grid_side closed form"
    ),
    "fit_scaling_exponent": "array-native: consumes a whole series already",
    "cycle_time_curve": "array-native: evaluates its axis with numpy already",
    "cycle_time_vs_processors": "array-native: evaluates its axis with numpy already",
    "communication_fraction": "array-native: evaluates its axis with numpy already",
    "phase_breakdown": "single-point diagnostic; no axis to vectorize",
    "constrained_allocation": (
        "feasibility logic; the batch tier serves it via the max_processors cap"
    ),
    "min_processors_for_memory": (
        "feasibility logic; the batch tier serves it via the max_processors cap"
    ),
    "elasticity": "finite-difference diagnostic around one point",
    "elasticity_profile": "finite-difference diagnostic around one point",
    "leverage_factor": "report-layer diagnostic; not on a sweep path",
    "leverage_report": "report-layer diagnostic; not on a sweep path",
    "optimize_with_working_rectangles": (
        "discrete working-set search; the Figure-6 series is served by "
        "rectangle_error_curves"
    ),
    "halo_volumes": "per-decomposition diagnostic; feeds both sim tiers",
    "neighbour_comm_time": (
        "shared scalar kernel; both sim tiers charge it identically"
    ),
    "validate_machine": (
        "wrapper over validation_arrays; already on the batched path"
    ),
    "validation_arrays": (
        "array-native: simulated column runs on simulate_replicas already"
    ),
    "validation_summary": "summary statistics over one finished sweep",
    "monte_carlo_bands": (
        "array-native: one lockstep simulate_replicas call per ensemble"
    ),
    "simulate_solve": (
        "multi-iteration solver driver; outside the one-iteration "
        "replica scope the batch tier serves"
    ),
}

_UNIVERSE_PREFIXES = ("repro.core.", "repro.sim.")
#: ``repro.sim.network`` holds event-level *implementation* kernels, not
#: public closed forms: their lockstep twins are the private scans in
#: ``repro.batch.sim``, tied together kernel by kernel in
#: ``tests/batch/test_sim.py`` rather than by public-name pairing.
_UNIVERSE_EXCLUDED = "repro.sim.network."
_MACHINES_PREFIX = "repro.machines"

#: Public grid methods whose scalar counterpart carries a different
#: name: ``cycle_time_area_grid`` is the grid analogue of the scalar
#: ``cycle_time`` (the ``_area`` marks its per-area signature, see
#: repro.machines.base).
_MACHINE_SCALAR_ALIASES: dict[str, str] = {"cycle_time_area": "cycle_time"}


def _module_all(tree: ast.Module) -> list[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)):
                return [
                    e.value
                    for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
    return []


@register_rule
class ParityRule(Rule):
    name = "parity-coverage"
    description = (
        "every public closed form is paired with a vectorized twin and a "
        "bit-equality test, or carries a recorded exemption"
    )

    def __init__(
        self,
        pairs: Mapping[str, str] = PAIRS,
        exempt: Mapping[str, str] = EXEMPT,
        tests_root: Path | None = None,
    ) -> None:
        self.pairs = dict(pairs)
        self.exempt = dict(exempt)
        self.tests_root = tests_root

    # ------------------------------------------------------------- plumbing

    def _universe(self, project: Project) -> list[tuple[str, str, int]]:
        """(module, function, line) for each public repro.core / repro.sim
        closed form."""
        out: list[tuple[str, str, int]] = []
        for module in project:
            if not module.name.startswith(_UNIVERSE_PREFIXES):
                continue
            if module.name.startswith(_UNIVERSE_EXCLUDED):
                continue
            exported = set(_module_all(module.tree))
            for node in module.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in exported
                ):
                    out.append((module.name, node.name, node.lineno))
        return sorted(out)

    def _twin_sites(self, project: Project) -> dict[str, str]:
        """twin function name -> module that defines it (batch tier wins)."""
        sites: dict[str, str] = {}
        wanted = set(self.pairs.values())
        for module in project:
            for node in module.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in wanted
                ):
                    prev = sites.get(node.name)
                    if prev is None or module.name.startswith("repro.batch"):
                        sites[node.name] = module.name
        return sites

    def _test_sites(self) -> dict[str, str]:
        """twin name -> test file mentioning it (empty if no tests root)."""
        root = self.tests_root
        if root is None or not root.is_dir():
            return {}
        sites: dict[str, str] = {}
        wanted = sorted(set(self.pairs.values()))
        for path in sorted(root.rglob("test_*.py")):
            text = path.read_text()
            for twin in wanted:
                if twin not in sites and twin in text:
                    sites[twin] = path.name
        return sites

    # ------------------------------------------------------------- checking

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        universe = self._universe(project)
        twin_sites = self._twin_sites(project)
        test_sites = self._test_sites()
        check_tests = self.tests_root is not None
        twin_names = set(self.pairs.values())

        for module_name, func, line in universe:
            if func in twin_names:
                continue  # is itself somebody's vectorized twin
            if func in self.exempt:
                continue
            twin = self.pairs.get(func)
            if twin is None:
                findings.append(
                    Finding(
                        rule=self.name,
                        module=module_name,
                        line=line,
                        message=(
                            f"public closed form {func} has no vectorized twin "
                            "registered — pair it in repro.analyze.parity.PAIRS "
                            "or record an exemption with its reason"
                        ),
                    )
                )
                continue
            if twin not in twin_sites:
                findings.append(
                    Finding(
                        rule=self.name,
                        module=module_name,
                        line=line,
                        message=(
                            f"{func} is paired with {twin}, but no function of "
                            "that name exists in the tree"
                        ),
                    )
                )
            elif check_tests and twin not in test_sites:
                findings.append(
                    Finding(
                        rule=self.name,
                        module=module_name,
                        line=line,
                        message=(
                            f"{func} / {twin}: no test file mentions the twin — "
                            "add a bit-equality test tying the pair together"
                        ),
                    )
                )

        findings.extend(self._check_machines(project))
        return sorted(findings, key=lambda f: (f.module, f.line))

    def _check_machines(self, project: Project) -> list[Finding]:
        """Every ``*_grid`` machine method shadows a scalar of the same name."""
        findings: list[Finding] = []
        classes: dict[str, tuple[str, ast.ClassDef]] = {}
        for module in project:
            if not module.name.startswith(_MACHINES_PREFIX):
                continue
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    classes[node.name] = (module.name, node)

        def methods_of(class_name: str, seen: set[str]) -> set[str]:
            if class_name in seen or class_name not in classes:
                return set()
            seen.add(class_name)
            _, node = classes[class_name]
            names = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for base in node.bases:
                if isinstance(base, ast.Name):
                    names |= methods_of(base.id, seen)
            return names

        for class_name in sorted(classes):
            module_name, node = classes[class_name]
            available = methods_of(class_name, set())
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                # Private ``_*_grid`` helpers are internal decompositions
                # of a public grid method, not API twins.
                if item.name.startswith("_") or not item.name.endswith("_grid"):
                    continue
                scalar = item.name[: -len("_grid")]
                scalar = _MACHINE_SCALAR_ALIASES.get(scalar, scalar)
                if scalar not in available:
                    findings.append(
                        Finding(
                            rule=self.name,
                            module=module_name,
                            line=item.lineno,
                            message=(
                                f"{class_name}.{item.name} has no scalar "
                                f"counterpart {scalar}() to be bit-equal to"
                            ),
                        )
                    )
        return findings

    # --------------------------------------------------------------- report

    def tables(self, project: Project) -> dict[str, list[dict[str, object]]]:
        twin_sites = self._twin_sites(project)
        test_sites = self._test_sites()
        twin_names = set(self.pairs.values())
        rows: list[dict[str, object]] = []
        for module_name, func, _line in self._universe(project):
            if func in twin_names:
                status, detail = "twin", "is a vectorized twin itself"
                test = test_sites.get(func, "")
            elif func in self.exempt:
                status, detail, test = "exempt", self.exempt[func], ""
            elif func in self.pairs:
                twin = self.pairs[func]
                site = twin_sites.get(twin)
                status = "paired" if site else "missing-twin"
                detail = f"{site}:{twin}" if site else twin
                test = test_sites.get(twin, "")
            else:
                status, detail, test = "UNPAIRED", "", ""
            rows.append(
                {
                    "function": func,
                    "module": module_name.removeprefix("repro."),
                    "status": status,
                    "twin / reason": detail,
                    "test": test,
                }
            )
        return {"parity coverage": rows}
