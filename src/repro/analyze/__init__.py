"""Static analysis over this repository's own source (``repro lint``).

The analyzer enforces the invariants the test suite can't see directly:

* ``fingerprint-purity`` — nothing reachable from the cache's
  fingerprint/serving paths may be nondeterministic;
* ``lock-discipline`` — guarded shared state is only touched under its
  lock (learned from ``with self._lock:`` blocks and ``# guarded-by:``
  annotations);
* ``vectorization-guard`` — batch-tier curve code never loops over
  array axes in Python;
* ``parity-coverage`` — every public closed form has a vectorized twin
  and a bit-equality test, or a recorded exemption.

Run it via ``repro lint`` (text) or ``repro lint --format json``
(written to ``results/LINT.json``, uploaded as a CI artifact).
"""

from __future__ import annotations

from pathlib import Path

from .framework import (
    Finding,
    Project,
    Rule,
    RuleResult,
    Suppression,
    all_rules,
    register_rule,
    run_rules,
)
from .locks import LockRule
from .parity import ParityRule
from .purity import PurityRule
from .report import LintReport, render_text, run_report, to_payload, write_json
from .vectorization import VectorizationRule

__all__ = [
    "Finding",
    "LintReport",
    "LockRule",
    "ParityRule",
    "Project",
    "PurityRule",
    "Rule",
    "RuleResult",
    "Suppression",
    "VectorizationRule",
    "all_rules",
    "default_rules",
    "lint_tree",
    "register_rule",
    "render_text",
    "run_report",
    "run_rules",
    "to_payload",
    "write_json",
]

#: src/repro — the tree the analyzer ships pointed at itself.
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


def default_rules(tests_root: Path | None = None) -> list[Rule]:
    """The shipped rule set, wired for the real tree."""
    if tests_root is None:
        candidate = _PACKAGE_ROOT.parent.parent / "tests"
        tests_root = candidate if candidate.is_dir() else None
    return [
        PurityRule(),
        LockRule(),
        VectorizationRule(),
        ParityRule(tests_root=tests_root),
    ]


def lint_tree(
    root: Path | None = None, tests_root: Path | None = None
) -> LintReport:
    """Lint a source tree (defaults to the installed ``repro`` package)."""
    project = Project.load(root if root is not None else _PACKAGE_ROOT)
    return run_report(project, default_rules(tests_root=tests_root))
