"""vectorization-guard: no Python loops over array axes in the batch tier.

The batch layer's contract (PR 4) is that curve functions evaluate a
whole parameter axis in O(1) Python — per-element loops quietly turn an
array-first API back into the scalar path it replaced, and the
regression shows up only as "sweeps got slow", never as a failed test.

The rule does a small array-likeness dataflow per function in scope:

* **seeds** — parameters annotated as arrays (``np.ndarray``,
  ``NDArray``, ``ArrayLike``) and results of ``np.*``/``numpy.*``
  calls;
* **propagation** — through arithmetic/comparison expressions,
  conditional expressions, and array methods (``.ravel()``,
  ``.astype()``, ...); assignment carries array-likeness to names;
* **escape** — ``.tolist()`` is the blessed exit to Python-land; its
  result is a list, and looping over it is deliberate.

``for`` loops and comprehensions/generator expressions whose iterable
is array-like (including through ``zip``/``enumerate``) are findings.
``while`` loops are exempt by design: the batch tier's bisection rounds
iterate over *refinements*, not axes, and each round is itself
vectorized.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .framework import Finding, Project, Rule, register_rule

__all__ = ["VectorizationRule", "DEFAULT_SCOPE"]

#: Where the array-first contract is load-bearing: the curve modules and
#: the numpy graph executor.  (The oracle executor is scalar *by
#: construction* — it exists to cross-check the vectorized path.)
DEFAULT_SCOPE = (
    "repro.batch.curves",
    "repro.batch.analysis",
    "repro.batch.sim",
    "repro.graph.executors:NumpyExecutor",
)

#: ndarray methods whose result is still an array.
_PROPAGATING_METHODS = frozenset(
    {
        "ravel", "astype", "copy", "reshape", "flatten", "squeeze",
        "clip", "round", "cumsum", "cumprod", "take", "transpose",
        "repeat", "view",
    }
)

_ARRAY_ANNOTATION_HINTS = ("ndarray", "NDArray", "ArrayLike")


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_CONTAINER_HEADS = frozenset(
    {"list", "List", "tuple", "Tuple", "Sequence", "Iterable", "dict", "Dict"}
)


def _annotation_is_array(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    # ``list[np.ndarray]`` names a *stack* of arrays: iterating it walks
    # the (small) candidate dimension, not an array axis.
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.id if isinstance(head, ast.Name) else getattr(head, "attr", "")
        if head_name in _CONTAINER_HEADS:
            return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    return any(hint in text for hint in _ARRAY_ANNOTATION_HINTS)


def _is_arraylike(node: ast.expr, arrays: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in arrays
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "tolist":
                return False  # blessed escape to a Python list
            dotted = _dotted(func)
            if dotted is not None and dotted.startswith(("np.", "numpy.")):
                return True
            if func.attr in _PROPAGATING_METHODS and _is_arraylike(
                func.value, arrays
            ):
                return True
        return False
    if isinstance(node, ast.BinOp):
        return _is_arraylike(node.left, arrays) or _is_arraylike(node.right, arrays)
    if isinstance(node, ast.UnaryOp):
        return _is_arraylike(node.operand, arrays)
    if isinstance(node, ast.Compare):
        return _is_arraylike(node.left, arrays) or any(
            _is_arraylike(c, arrays) for c in node.comparators
        )
    if isinstance(node, ast.IfExp):
        return _is_arraylike(node.body, arrays) or _is_arraylike(node.orelse, arrays)
    return False


def _iter_is_arraylike(node: ast.expr, arrays: set[str]) -> bool:
    """Is this ``for``-iterable an array (possibly via zip/enumerate)?"""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("zip", "enumerate", "reversed")
    ):
        return any(_iter_is_arraylike(arg, arrays) for arg in node.args)
    return _is_arraylike(node, arrays)


def _infer_arrays(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    arrays: set[str] = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _annotation_is_array(arg.annotation):
            arrays.add(arg.arg)
    # Fixed point over assignments: small bodies, few rounds.
    for _ in range(10):
        changed = False
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                if name not in arrays and _is_arraylike(node.value, arrays):
                    arrays.add(name)
                    changed = True
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = node.target.id
                if name not in arrays and (
                    _annotation_is_array(node.annotation)
                    or (
                        node.value is not None
                        and _is_arraylike(node.value, arrays)
                    )
                ):
                    arrays.add(name)
                    changed = True
        if not changed:
            break
    return arrays


@register_rule
class VectorizationRule(Rule):
    name = "vectorization-guard"
    description = "batch-tier curve code must not loop over array axes in Python"

    def __init__(self, scope: Iterable[str] = DEFAULT_SCOPE) -> None:
        self.scope = list(scope)

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for module_name, qualname, fn in self._functions_in_scope(project):
            arrays = _infer_arrays(fn)
            if not arrays:
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.For):
                    if _iter_is_arraylike(node.iter, arrays):
                        findings.append(
                            Finding(
                                rule=self.name,
                                module=module_name,
                                line=node.lineno,
                                message=(
                                    f"{qualname} iterates an array axis with a "
                                    "Python for-loop — use numpy ufuncs / "
                                    "np.where, or .tolist() if scalar handoff "
                                    "is intended"
                                ),
                            )
                        )
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in node.generators:
                        if _iter_is_arraylike(gen.iter, arrays):
                            findings.append(
                                Finding(
                                    rule=self.name,
                                    module=module_name,
                                    line=node.lineno,
                                    message=(
                                        f"{qualname} comprehends over an array "
                                        "axis element-by-element — use numpy "
                                        "ufuncs / np.where, or .tolist() if "
                                        "scalar handoff is intended"
                                    ),
                                )
                            )
        return sorted(findings, key=lambda f: (f.module, f.line))

    def _functions_in_scope(
        self, project: Project
    ) -> Iterator[tuple[str, str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for entry in self.scope:
            module_name, _, class_name = entry.partition(":")
            module = project.get(module_name)
            if module is None:
                continue
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not class_name:
                        yield module_name, node.name, node
                elif isinstance(node, ast.ClassDef):
                    if class_name and node.name != class_name:
                        continue
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            yield module_name, f"{node.name}.{item.name}", item
