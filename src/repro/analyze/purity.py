"""fingerprint-purity: the cache's key paths must be deterministic.

Every consumer of :class:`~repro.batch.cache.SweepCache` — the analysis
layer, the service daemon, the graph planner, sharded workers — shares
results purely because :func:`~repro.batch.cache.fingerprint` is a pure
function of the request.  One reach into nondeterminism (wall clock,
unseeded RNG, environment, ``id()``-carrying default ``repr``) and two
processes disagree about what a request is named: silent duplicate
compute at best, a wrong answer served from someone else's entry at
worst.

The rule computes the call graph reachable from the fingerprinting and
cached-evaluation entry points and flags:

* calls into known nondeterminism — ``time.*``, ``random.*`` /
  ``np.random.*``, ``uuid.*``, ``secrets.*``, ``datetime.*``,
  ``os.environ`` / ``os.getenv`` / ``os.urandom``, ``id()``, and
  ``hash()`` (string hashing is salted per process);
* ``repr(x)`` of a bare name/attribute without a type guard — the
  default ``object.__repr__`` embeds the memory address, so an
  unguarded fallback silently produces per-process fingerprints.
  A ``repr`` is *guarded* when it sits in an ``if`` branch whose test
  pins the value's type (``isinstance(x, ...)``, ``type(x) is ...``)
  or verifies the repr is overridden (a ``*stable_repr*`` predicate);
  ``repr`` of a call result is the callee's responsibility and is not
  flagged here.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .callgraph import build_call_graph
from .framework import Finding, Project, Rule, register_rule

__all__ = ["PurityRule", "DEFAULT_ROOTS"]

#: Entry points whose transitive callees must stay deterministic: the
#: fingerprint function itself, the cache's request-serving methods, and
#: the graph node identity (which *is* a fingerprint).
DEFAULT_ROOTS = (
    "repro.batch.cache:fingerprint",
    "repro.batch.cache:SweepCache.lookup",
    "repro.batch.cache:SweepCache.lookup_level",
    "repro.batch.cache:SweepCache.store",
    "repro.batch.cache:SweepCache.get_or_compute",
    "repro.graph.nodes:Node.key",
)

#: Dotted-name prefixes that reach nondeterminism.
_IMPURE_PREFIXES = (
    "time.",
    "random.",
    "np.random",
    "numpy.random",
    "uuid.",
    "secrets.",
    "datetime.",
    "os.environ",
)

#: Exact dotted names that reach nondeterminism.
_IMPURE_EXACT = frozenset({"id", "hash", "os.getenv", "os.urandom"})


def _impure(dotted: str) -> bool:
    return dotted in _IMPURE_EXACT or any(
        dotted.startswith(p) for p in _IMPURE_PREFIXES
    )


def _guard_names(test: ast.expr) -> set[str]:
    """Names whose type the ``if`` test pins (blessing their ``repr``)."""
    names: set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        callee = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        arg = node.args[0]
        if callee == "isinstance" or "stable_repr" in callee:
            root = _root_name(arg)
            if root is not None:
                names.add(root)
        elif callee == "type":
            # ``type(x) is Cls`` — the Compare wrapping this call; pin x.
            root = _root_name(arg)
            if root is not None:
                names.add(root)
    return names


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register_rule
class PurityRule(Rule):
    name = "fingerprint-purity"
    description = (
        "code reachable from SweepCache fingerprinting/serving paths must "
        "be deterministic"
    )

    def __init__(self, roots: Iterable[str] = DEFAULT_ROOTS) -> None:
        self.roots = list(roots)

    def check(self, project: Project) -> list[Finding]:
        graph = build_call_graph(project)
        reachable = graph.reachable(self.roots)
        findings: list[Finding] = []
        for key in sorted(reachable):
            info = graph.functions[key]
            for dotted, line in sorted(info.external_calls):
                if _impure(dotted):
                    findings.append(
                        Finding(
                            rule=self.name,
                            module=info.module,
                            line=line,
                            message=(
                                f"{info.qualname} (reachable from fingerprint "
                                f"paths) calls nondeterministic {dotted}()"
                            ),
                        )
                    )
            findings.extend(self._attribute_hazards(info))
            findings.extend(self._unguarded_reprs(info))
        return findings

    def _attribute_hazards(self, info) -> list[Finding]:
        """Non-call reads of os.environ (subscripts, .get handled above)."""
        out = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                root = _root_name(node)
                if root == "os":
                    out.append(
                        Finding(
                            rule=self.name,
                            module=info.module,
                            line=node.lineno,
                            message=(
                                f"{info.qualname} (reachable from fingerprint "
                                "paths) reads os.environ"
                            ),
                        )
                    )
        return out

    def _unguarded_reprs(self, info) -> list[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, blessed: frozenset[str]) -> None:
            if isinstance(node, ast.If):
                visit(node.test, blessed)
                branch = blessed | _guard_names(node.test)
                for child in node.body:
                    visit(child, branch)
                for child in node.orelse:
                    visit(child, blessed)
                return
            if isinstance(node, ast.IfExp):
                visit(node.test, blessed)
                visit(node.body, blessed | _guard_names(node.test))
                visit(node.orelse, blessed)
                return
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "repr"
                and node.args
                and isinstance(node.args[0], (ast.Name, ast.Attribute))
            ):
                root = _root_name(node.args[0])
                if root is not None and root not in blessed:
                    findings.append(
                        Finding(
                            rule=self.name,
                            module=info.module,
                            line=node.lineno,
                            message=(
                                f"{info.qualname} feeds repr({root}) into a "
                                "fingerprint without a type guard — a default "
                                "object.__repr__ would embed id() and vary "
                                "per process"
                            ),
                        )
                    )
                return
            for child in ast.iter_child_nodes(node):
                visit(child, blessed)

        visit(info.node, frozenset())
        return findings
