"""The analyzer's chassis: sources, suppressions, findings, rules.

``repro lint`` is a custom static-analysis pass over this repository's
own source.  Everything the individual rules share lives here:

* :class:`SourceModule` / :class:`Project` — parsed ASTs for every
  module under the package root (or, in tests, for synthetic in-memory
  trees), with per-line comment access for the annotation conventions.
* **Suppressions** — ``# lint: disable=<rule>[,<rule>] -- <reason>``
  on the offending line silences that rule *for that line*; the same
  comment trailing a ``def`` or ``class`` line silences it for the
  whole scope.  The justification after ``--`` is mandatory: a
  suppression without one is itself reported as a finding, so every
  silenced invariant carries its reason in the source.
* :class:`Finding` / :class:`Rule` / the registry — rules declare a
  name and produce findings; :func:`run_rules` applies suppressions
  and splits active from suppressed.

The conventions the rules themselves read (``# guarded-by: <lock>``,
``# requires-lock: <lock>``) are also parsed here so their syntax stays
in one place.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Finding",
    "Suppression",
    "SourceModule",
    "Project",
    "Rule",
    "register_rule",
    "all_rules",
    "run_rules",
]

#: ``# lint: disable=rule-a,rule-b -- why this is sound``
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>[\w,-]+)(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)
#: ``# guarded-by: _lock`` — declares the lock protecting an attribute.
_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>\w+)")
#: ``# requires-lock: _lock`` — the method runs with the lock already held.
_REQUIRES_LOCK_RE = re.compile(r"#\s*requires-lock:\s*(?P<lock>\w+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    module: str
    line: int
    message: str

    def location(self) -> str:
        return f"{self.module}:{self.line}"


@dataclass(frozen=True)
class Suppression:
    """One ``# lint: disable=...`` comment and what it covers."""

    rules: tuple[str, ...]
    module: str
    line: int
    #: Inclusive line range the suppression covers (== (line, line) for
    #: line suppressions; the scope's span for def/class suppressions).
    span: tuple[int, int]
    reason: str | None

    def covers(self, rule: str, line: int) -> bool:
        return rule in self.rules and self.span[0] <= line <= self.span[1]


class SourceModule:
    """One parsed source file plus its comment-borne annotations."""

    def __init__(self, name: str, path: Path | None, text: str) -> None:
        self.name = name
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path or f"<{name}>"))
        self._comments = self._collect_comments(text)
        self.suppressions = self._collect_suppressions()

    # ------------------------------------------------------------- comments

    @staticmethod
    def _collect_comments(text: str) -> dict[int, str]:
        """Line number → comment text, via the tokenizer (not substring
        search, so ``#`` inside string literals never parses as one)."""
        comments: dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(StringIO(text).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught it
            pass
        return comments

    def comment_on(self, line: int) -> str | None:
        return self._comments.get(line)

    def guarded_by(self, line: int) -> str | None:
        """The ``# guarded-by: <lock>`` annotation on ``line``, if any."""
        comment = self._comments.get(line)
        if comment is None:
            return None
        m = _GUARDED_BY_RE.search(comment)
        return m.group("lock") if m else None

    def requires_lock(self, node: ast.FunctionDef) -> str | None:
        """The ``# requires-lock: <lock>`` annotation on a ``def``.

        Checked on the ``def`` line itself and on the line directly
        above it (where decorators or long signatures push comments).
        """
        for line in (node.lineno, node.lineno - 1):
            comment = self._comments.get(line)
            if comment is not None:
                m = _REQUIRES_LOCK_RE.search(comment)
                if m:
                    return m.group("lock")
        return None

    # --------------------------------------------------------- suppressions

    def _collect_suppressions(self) -> list[Suppression]:
        scopes = self._scope_spans()
        out: list[Suppression] = []
        for line, comment in self._comments.items():
            m = _SUPPRESS_RE.search(comment)
            if m is None:
                continue
            rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
            span = scopes.get(line, (line, line))
            out.append(
                Suppression(
                    rules=rules,
                    module=self.name,
                    line=line,
                    span=span,
                    reason=m.group("reason"),
                )
            )
        return out

    def _scope_spans(self) -> dict[int, tuple[int, int]]:
        """def/class header line → the scope's (start, end) line span.

        A suppression on a ``def``/``class`` line covers the whole
        body; anywhere else it covers just its own line.
        """
        spans: dict[int, tuple[int, int]] = {}
        for node in ast.walk(self.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                # The header may span several lines (long signatures);
                # map each of them to the scope.
                body_start = node.body[0].lineno if node.body else node.lineno
                for line in range(node.lineno, body_start + 1):
                    spans[line] = (node.lineno, end)
        return spans

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        """The narrowest suppression covering ``(rule, line)``, if any."""
        best: Suppression | None = None
        for sup in self.suppressions:
            if sup.covers(rule, line):
                if best is None or (sup.span[1] - sup.span[0]) < (
                    best.span[1] - best.span[0]
                ):
                    best = sup
        return best


class Project:
    """Every parsed module the rules can see, keyed by dotted name."""

    def __init__(self, modules: Mapping[str, SourceModule], root: Path | None = None):
        self.modules = dict(modules)
        self.root = root

    @classmethod
    def load(cls, root: Path, package: str = "repro") -> "Project":
        """Parse ``<root>/**/*.py`` as the ``package`` namespace."""
        root = Path(root)
        modules: dict[str, SourceModule] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).with_suffix("")
            parts = [package, *rel.parts]
            if parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join(parts)
            modules[name] = SourceModule(name, path, path.read_text())
        return cls(modules, root=root)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """In-memory project for rule fixture tests."""
        return cls(
            {name: SourceModule(name, None, text) for name, text in sources.items()}
        )

    def get(self, name: str) -> SourceModule | None:
        return self.modules.get(name)

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules.values())


# --------------------------------------------------------------------------
# Rules and the registry
# --------------------------------------------------------------------------


class Rule:
    """One invariant checker.  Subclasses set ``name`` and ``check``."""

    #: Registry key; also what suppression comments name.
    name: str = "abstract"
    description: str = ""

    def check(self, project: Project) -> list[Finding]:
        raise NotImplementedError

    def tables(self, project: Project) -> dict[str, list[dict[str, object]]]:
        """Optional structured output (the parity rule's coverage table)."""
        return {}


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: expose a rule to ``repro lint``."""
    _REGISTRY[rule_cls.name] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    return dict(_REGISTRY)


@dataclass
class RuleResult:
    """One rule's outcome after suppressions are applied."""

    rule: str
    active: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)


def run_rules(
    project: Project, rules: Iterable[Rule]
) -> tuple[list[RuleResult], list[Finding]]:
    """Run rules and fold in suppressions.

    Returns per-rule results plus *meta* findings: suppressions missing
    the mandatory ``-- <reason>`` justification, and suppressions that
    silence nothing (stale ones rot into false confidence).
    """
    results: list[RuleResult] = []
    used: set[tuple[str, str, int]] = set()
    for rule in rules:
        result = RuleResult(rule=rule.name)
        for finding in rule.check(project):
            module = project.get(finding.module)
            sup = (
                module.suppression_for(finding.rule, finding.line)
                if module is not None
                else None
            )
            if sup is None:
                result.active.append(finding)
            else:
                result.suppressed.append((finding, sup))
                used.add((sup.module, ",".join(sup.rules), sup.line))
        results.append(result)
    known = {rule.name for rule in rules}
    meta: list[Finding] = []
    for module in project:
        for sup in module.suppressions:
            if not any(r in known for r in sup.rules):
                continue
            if sup.reason is None:
                meta.append(
                    Finding(
                        rule="suppression-justification",
                        module=sup.module,
                        line=sup.line,
                        message=(
                            "suppression is missing its justification: write "
                            "`# lint: disable=<rule> -- <why this is sound>`"
                        ),
                    )
                )
            elif (sup.module, ",".join(sup.rules), sup.line) not in used:
                meta.append(
                    Finding(
                        rule="stale-suppression",
                        module=sup.module,
                        line=sup.line,
                        message=(
                            f"suppression for {', '.join(sup.rules)} matches no "
                            "finding — the invariant holds, drop the comment"
                        ),
                    )
                )
    return results, meta
