"""Project-wide call graph for reachability-based rules.

The purity rule needs "every function transitively reachable from the
fingerprint entry points".  This module builds a conservative call
graph over the parsed :class:`~repro.analyze.framework.Project`:

* Functions are keyed ``module:qualname`` (``repro.batch.cache:SweepCache.store``).
* Calls are resolved through module imports (``from x import f``,
  ``import x.y``), through ``self.method(...)`` within a class (including
  methods inherited from project-local base classes), and through plain
  module-local names.
* Unresolvable calls (into the stdlib, numpy, ...) are kept as *external*
  edges so rules can pattern-match the dotted name (``time.time``,
  ``np.random.default_rng``) without needing those modules parsed.

This is deliberately a static over-approximation: no dynamic dispatch,
no aliasing through data structures.  For the rule set here that is the
right trade — the fingerprint paths are plain direct calls.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .framework import Project, SourceModule

__all__ = ["CallGraph", "FunctionInfo", "build_call_graph"]


@dataclass
class FunctionInfo:
    """One function/method definition in the project."""

    key: str  # "module:qualname"
    module: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Resolved project-internal callees, as "module:qualname" keys.
    calls: set[str] = field(default_factory=set)
    #: Unresolved call targets, as dotted names ("time.time", "id").
    external_calls: set[tuple[str, int]] = field(default_factory=set)


class CallGraph:
    def __init__(self, functions: dict[str, FunctionInfo]):
        self.functions = functions

    def get(self, key: str) -> FunctionInfo | None:
        return self.functions.get(key)

    def reachable(self, roots: list[str]) -> set[str]:
        """All function keys transitively callable from ``roots``."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            info = self.functions[key]
            stack.extend(c for c in info.calls if c not in seen)
        return seen


# --------------------------------------------------------------------------
# Construction
# --------------------------------------------------------------------------


@dataclass
class _ModuleScope:
    """What each bare name in a module resolves to."""

    #: local name -> module it aliases ("np" -> "numpy")
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> "module:qualname" or "module.attr" dotted fallback
    imported_names: dict[str, str] = field(default_factory=dict)
    #: names defined in this module (functions and classes)
    local_defs: set[str] = field(default_factory=set)
    #: class name -> list of project-local base-class "module:Class" keys
    class_bases: dict[str, list[str]] = field(default_factory=dict)


def _collect_scope(module: SourceModule) -> _ModuleScope:
    scope = _ModuleScope()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                scope.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    scope.module_aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            source = _resolve_from_import(module.name, node)
            if source is None:
                continue
            for alias in node.names:
                scope.imported_names[alias.asname or alias.name] = (
                    f"{source}:{alias.name}"
                )
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scope.local_defs.add(node.name)
    return scope


def _resolve_from_import(module_name: str, node: ast.ImportFrom) -> str | None:
    if node.level == 0:
        return node.module
    # Relative import: walk up from the *package* containing the module.
    parts = module_name.split(".")
    # A module's package is everything but its last component; ``from .``
    # inside a package __init__ would differ, but Project.load names
    # __init__ modules by their package already.
    base = parts[: len(parts) - (node.level - 1) - 1] if node.level > 1 else parts[:-1]
    # Package __init__ modules: "repro.batch" importing ".cache" at level 1
    # resolves relative to itself, not its parent.
    if node.level == 1 and _looks_like_package(module_name):
        base = parts
    if node.module:
        return ".".join([*base, node.module]) if base else node.module
    return ".".join(base) if base else None


_PACKAGES: set[str] = set()


def _looks_like_package(name: str) -> bool:
    return name in _PACKAGES


def build_call_graph(project: Project) -> CallGraph:
    _PACKAGES.clear()
    # A module is a package if any other module name nests under it.
    names = set(project.modules)
    for name in names:
        parent = name.rsplit(".", 1)[0] if "." in name else None
        while parent:
            _PACKAGES.add(parent)
            parent = parent.rsplit(".", 1)[0] if "." in parent else None
    # Packages themselves (from __init__.py) may also appear as modules.
    for name in names:
        if any(other.startswith(name + ".") for other in names):
            _PACKAGES.add(name)

    scopes = {m.name: _collect_scope(m) for m in project}
    functions: dict[str, FunctionInfo] = {}
    class_methods: dict[str, dict[str, str]] = {}  # "mod:Class" -> {meth: key}
    class_bases: dict[str, list[tuple[str, str | None]]] = {}

    for module in project:
        scope = scopes[module.name]
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{module.name}:{node.name}"
                functions[key] = FunctionInfo(key, module.name, node.name, node)
            elif isinstance(node, ast.ClassDef):
                ckey = f"{module.name}:{node.name}"
                class_methods[ckey] = {}
                bases: list[tuple[str, str | None]] = []
                for b in node.bases:
                    bname = _dotted(b)
                    if bname is not None:
                        bases.append((module.name, bname))
                class_bases[ckey] = bases
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{item.name}"
                        key = f"{module.name}:{qual}"
                        functions[key] = FunctionInfo(key, module.name, qual, item)
                        class_methods[ckey][item.name] = key

    def resolve_class(module_name: str, name: str) -> str | None:
        """Resolve a class name used in ``module_name`` to a class key."""
        scope = scopes.get(module_name)
        if scope is None:
            return None
        head = name.split(".")[0]
        if name in scope.local_defs and f"{module_name}:{name}" in class_methods:
            return f"{module_name}:{name}"
        target = scope.imported_names.get(name)
        if target is not None and target in class_methods:
            return target
        if target is not None and ":" in target:
            # Re-exported through a package __init__: chase one hop.
            src_mod, src_name = target.split(":", 1)
            chased = resolve_class(src_mod, src_name)
            if chased is not None:
                return chased
        mod = scope.module_aliases.get(head)
        if mod is not None and "." in name:
            candidate = f"{mod}.{'.'.join(name.split('.')[1:-1])}".rstrip(".")
            tail = name.split(".")[-1]
            ckey = f"{candidate}:{tail}" if candidate else f"{mod}:{tail}"
            if ckey in class_methods:
                return ckey
        return None

    def method_lookup(ckey: str, meth: str, depth: int = 0) -> str | None:
        """Find ``meth`` on class ``ckey`` or its project-local bases."""
        if depth > 8:
            return None
        found = class_methods.get(ckey, {}).get(meth)
        if found is not None:
            return found
        for base_mod, base_name in class_bases.get(ckey, []):
            if base_name is None:
                continue
            base_key = resolve_class(base_mod, base_name)
            if base_key is not None:
                found = method_lookup(base_key, meth, depth + 1)
                if found is not None:
                    return found
        return None

    # Second pass: resolve calls inside each function body.
    for module in project:
        scope = scopes[module.name]
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _resolve_calls(
                    functions[f"{module.name}:{node.name}"],
                    module,
                    scope,
                    functions,
                    class_methods,
                    method_lookup,
                    resolve_class,
                    enclosing_class=None,
                )
            elif isinstance(node, ast.ClassDef):
                ckey = f"{module.name}:{node.name}"
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        _resolve_calls(
                            functions[f"{module.name}:{node.name}.{item.name}"],
                            module,
                            scope,
                            functions,
                            class_methods,
                            method_lookup,
                            resolve_class,
                            enclosing_class=ckey,
                        )
    return CallGraph(functions)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute/name chains as a dotted string, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _resolve_calls(
    info: FunctionInfo,
    module: SourceModule,
    scope: _ModuleScope,
    functions: dict[str, FunctionInfo],
    class_methods: dict[str, dict[str, str]],
    method_lookup,
    resolve_class,
    enclosing_class: str | None,
) -> None:
    for call in ast.walk(info.node):
        if not isinstance(call, ast.Call):
            continue
        target = call.func
        dotted = _dotted(target)
        resolved = False
        if isinstance(target, ast.Name):
            name = target.id
            if name in scope.local_defs and f"{module.name}:{name}" in functions:
                info.calls.add(f"{module.name}:{name}")
                resolved = True
            elif name in scope.imported_names:
                imp = scope.imported_names[name]
                if imp in functions:
                    info.calls.add(imp)
                    resolved = True
                else:
                    # Class constructor -> __init__, or re-export chase.
                    ckey = resolve_class(module.name, name)
                    if ckey is not None:
                        init = method_lookup(ckey, "__init__")
                        if init is not None:
                            info.calls.add(init)
                            resolved = True
            elif name in scope.local_defs:
                # Local class constructor.
                ckey = f"{module.name}:{name}"
                if ckey in class_methods:
                    init = method_lookup(ckey, "__init__")
                    if init is not None:
                        info.calls.add(init)
                    resolved = True
        elif isinstance(target, ast.Attribute):
            base = _dotted(target.value)
            if base == "self" and enclosing_class is not None:
                found = method_lookup(enclosing_class, target.attr)
                if found is not None:
                    info.calls.add(found)
                    resolved = True
            elif base is not None:
                head = base.split(".")[0]
                mod = scope.module_aliases.get(head)
                if mod is not None:
                    full_mod = (
                        mod
                        if base == head
                        else ".".join([mod, *base.split(".")[1:]])
                    )
                    fkey = f"{full_mod}:{target.attr}"
                    if fkey in functions:
                        info.calls.add(fkey)
                        resolved = True
        if not resolved and dotted is not None:
            info.external_calls.add((dotted, call.lineno))
