"""Reporters for ``repro lint``: human text and machine JSON.

The JSON shape (written to ``results/LINT.json`` and uploaded as a CI
artifact) is stable: rule counts, every active and suppressed finding
(with its justification), the meta findings, and any rule-provided
tables (the parity-coverage table).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.report.tables import format_table

from .framework import Finding, Project, Rule, RuleResult

__all__ = ["LintReport", "render_text", "to_payload", "write_json"]


class LintReport:
    """The outcome of one full lint run."""

    def __init__(
        self,
        results: list[RuleResult],
        meta: list[Finding],
        tables: dict[str, list[dict[str, object]]],
        module_count: int,
    ) -> None:
        self.results = results
        self.meta = meta
        self.tables = tables
        self.module_count = module_count

    @property
    def active_findings(self) -> list[Finding]:
        found = [f for r in self.results for f in r.active]
        found.extend(self.meta)
        return sorted(found, key=lambda f: (f.module, f.line, f.rule))

    @property
    def suppressed_count(self) -> int:
        return sum(len(r.suppressed) for r in self.results)

    @property
    def ok(self) -> bool:
        return not self.active_findings


def run_report(project: Project, rules: list[Rule]) -> LintReport:
    from .framework import run_rules

    results, meta = run_rules(project, rules)
    tables: dict[str, list[dict[str, object]]] = {}
    for rule in rules:
        tables.update(rule.tables(project))
    return LintReport(results, meta, tables, module_count=len(project.modules))


def render_text(report: LintReport) -> str:
    lines: list[str] = []
    summary_rows = []
    for result in report.results:
        summary_rows.append(
            [result.rule, len(result.active), len(result.suppressed)]
        )
    summary_rows.append(["(meta)", len(report.meta), 0])
    lines.append(
        format_table(
            ["rule", "active", "suppressed"],
            summary_rows,
            title=f"repro lint — {report.module_count} modules",
        )
    )
    for finding in report.active_findings:
        lines.append(f"{finding.location()}: [{finding.rule}] {finding.message}")
    suppressed = [
        (f, s) for r in report.results for (f, s) in r.suppressed
    ]
    if suppressed:
        lines.append("")
        lines.append("suppressed:")
        for finding, sup in sorted(
            suppressed, key=lambda pair: (pair[0].module, pair[0].line)
        ):
            lines.append(
                f"  {finding.location()}: [{finding.rule}] {finding.message}"
            )
            lines.append(f"    justification: {sup.reason}")
    for name, rows in report.tables.items():
        if not rows:
            continue
        lines.append("")
        headers = list(rows[0].keys())
        lines.append(
            format_table(
                headers,
                [[row.get(h, "") for h in headers] for row in rows],
                title=name,
            )
        )
    lines.append("")
    verdict = "clean" if report.ok else f"{len(report.active_findings)} finding(s)"
    lines.append(f"result: {verdict} ({report.suppressed_count} suppressed)")
    return "\n".join(lines)


def to_payload(report: LintReport) -> dict[str, Any]:
    def finding_dict(f: Finding) -> dict[str, Any]:
        return {"rule": f.rule, "module": f.module, "line": f.line, "message": f.message}

    return {
        "modules": report.module_count,
        "ok": report.ok,
        "rules": {
            r.rule: {
                "active": [finding_dict(f) for f in r.active],
                "suppressed": [
                    {**finding_dict(f), "justification": s.reason}
                    for (f, s) in r.suppressed
                ],
            }
            for r in report.results
        },
        "meta": [finding_dict(f) for f in report.meta],
        "tables": report.tables,
    }


def write_json(report: LintReport, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_payload(report), indent=2, sort_keys=True) + "\n")
