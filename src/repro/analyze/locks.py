"""lock-discipline: guarded shared state is only touched under its lock.

The threaded tiers (:class:`~repro.batch.cache.SweepCache`, the service
daemon) are correct only because every access to shared mutable state
happens inside ``with self.<lock>:``.  That convention is invisible to
tests that don't lose the race, so this rule makes it mechanical:

* **Locks** are attributes assigned ``threading.Lock()`` / ``RLock()``
  (or friends) in ``__init__``.
* **The guard map** (attribute → lock) is *learned* from the code: any
  attribute mutated inside a ``with self.<lock>:`` block is guarded by
  that lock everywhere.  ``# guarded-by: <lock>`` on the attribute's
  assignment declares the same thing explicitly (and documents it at
  the definition site).
* **Every access** — read or write; torn multi-counter reads are how a
  stats endpoint lies — of a guarded attribute outside its lock is a
  finding, except in ``__init__``/``__post_init__`` (construction is
  single-threaded).
* A method that runs with the lock already held is annotated
  ``# requires-lock: <lock>`` on its ``def`` line; its body is checked
  as if the lock were held, and every *call site* of the method must
  hold the lock instead.
* Instance attributes holding another project class
  (``self.cache = SweepCache(...)``) extend the check across objects:
  ``self.cache.stats`` outside ``with self.cache._lock:`` is the exact
  shape of the stats-endpoint race.

An attribute mutated under two different locks is itself a finding —
two locks guarding one attribute exclude nobody.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .framework import Finding, Project, Rule, SourceModule, register_rule

__all__ = ["LockRule", "MUTATORS"]

#: Method names that mutate their receiver.
MUTATORS = frozenset(
    {
        "append", "extend", "insert", "pop", "popitem", "remove", "discard",
        "clear", "update", "setdefault", "add", "move_to_end", "sort",
        "reverse", "count_executor_run", "merge",
    }
)

_LOCK_FACTORIES = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_chain(node: ast.expr) -> list[str] | None:
    """``self.a.b.c`` → ``["a", "b", "c"]``; ``None`` for other roots."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id == "self":
        return list(reversed(parts))
    return None


def _mutated_attrs(node: ast.AST) -> Iterator[str]:
    """Self-attributes this statement mutates (non-recursive)."""

    def target_attr(target: ast.expr) -> str | None:
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            chain = _self_chain(target)
            if chain:
                return chain[0]
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            attr = target_attr(target)
            if attr is not None:
                yield attr
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = target_attr(node.target)
        if attr is not None:
            yield attr
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = target_attr(target)
            if attr is not None:
                yield attr
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATORS:
            chain = _self_chain(node.func.value)
            if chain:
                yield chain[0]


@dataclass
class _ClassInfo:
    module: SourceModule
    node: ast.ClassDef
    locks: set[str] = field(default_factory=set)
    #: attr -> set of lock names that guard it
    guarded: dict[str, set[str]] = field(default_factory=dict)
    #: attr -> "module:Class" of the project class instance it holds
    instance_types: dict[str, str] = field(default_factory=dict)
    #: base-class keys ("module:Class") resolved within the project
    bases: list[str] = field(default_factory=list)
    #: method name -> lock it requires held at entry
    requires: dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module.name}:{self.node.name}"

    def methods(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            item
            for item in self.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


def _held_lock(expr: ast.expr) -> str | None:
    """``with self.X:`` → ``"X"``; ``with self.obj.X:`` → ``"obj.X"``."""
    if isinstance(expr, ast.Attribute):
        chain = _self_chain(expr)
        if chain is not None and 1 <= len(chain) <= 2:
            return ".".join(chain)
    return None


@register_rule
class LockRule(Rule):
    name = "lock-discipline"
    description = "guarded shared attributes are only accessed under their lock"

    def check(self, project: Project) -> list[Finding]:
        classes = self._collect_classes(project)
        findings: list[Finding] = []
        for info in classes.values():
            if info.guarded or info.requires or info.instance_types:
                findings.extend(self._check_class(info, classes))
        return sorted(findings, key=lambda f: (f.module, f.line))

    # ------------------------------------------------------------ collection

    def _collect_classes(self, project: Project) -> dict[str, _ClassInfo]:
        classes: dict[str, _ClassInfo] = {}
        imports: dict[str, dict[str, str]] = {}
        for module in project:
            imported: dict[str, str] = {}
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom) and node.level == 0:
                    for alias in node.names:
                        imported[alias.asname or alias.name] = (
                            f"{node.module}:{alias.name}"
                        )
            imports[module.name] = imported
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = _ClassInfo(module=module, node=node)
                    classes[info.key] = info

        for info in classes.values():
            imported = imports[info.module.name]
            for base in info.node.bases:
                name = _dotted(base)
                if name is None:
                    continue
                local = f"{info.module.name}:{name}"
                if local in classes:
                    info.bases.append(local)
                elif name in imported and imported[name] in classes:
                    info.bases.append(imported[name])
            self._scan_class(info, classes, imported)
        self._inherit_guards(classes)
        return classes

    def _scan_class(
        self,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
        imported: dict[str, str],
    ) -> None:
        module = info.module
        for method in info.methods():
            lock = module.requires_lock(method)
            if lock is not None:
                info.requires[method.name] = lock
            in_init = method.name in ("__init__", "__post_init__")
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    chain = _self_chain(target)
                    if chain is None or len(chain) != 1:
                        continue
                    attr = chain[0]
                    value = node.value
                    callee = (
                        _dotted(value.func) if isinstance(value, ast.Call) else None
                    )
                    if callee is not None:
                        if callee.rsplit(".", 1)[-1] in _LOCK_FACTORIES:
                            info.locks.add(attr)
                        elif in_init:
                            local = f"{module.name}:{callee}"
                            if local in classes:
                                info.instance_types[attr] = local
                            elif callee in imported and imported[callee] in classes:
                                info.instance_types[attr] = imported[callee]
                    declared = module.guarded_by(target.lineno)
                    if declared is not None:
                        info.guarded.setdefault(attr, set()).add(declared)
            if not in_init:
                self._infer_guards(info, method)

    def _infer_guards(self, info: _ClassInfo, method: ast.AST) -> None:
        """Attributes mutated inside ``with self.<lock>:`` become guarded."""

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, ast.With):
                new_held = held
                for item in node.items:
                    lock = _held_lock(item.context_expr)
                    if lock is not None:
                        new_held = new_held | {lock}
                for child in node.body:
                    visit(child, new_held)
                return
            if held:
                # Only same-object locks name a guard relation here;
                # cross-object guards come from the owning class.
                direct = {h for h in held if "." not in h}
                if direct:
                    for attr in _mutated_attrs(node):
                        if attr not in info.locks:
                            info.guarded.setdefault(attr, set()).update(direct)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        visit(method, frozenset())

    def _inherit_guards(self, classes: dict[str, _ClassInfo]) -> None:
        for info in classes.values():
            seen: set[str] = set()
            stack = list(info.bases)
            while stack:
                base_key = stack.pop()
                if base_key in seen:
                    continue
                seen.add(base_key)
                base = classes.get(base_key)
                if base is None:
                    continue
                info.locks |= base.locks
                for attr, locks in base.guarded.items():
                    info.guarded.setdefault(attr, set()).update(locks)
                for attr, cls in base.instance_types.items():
                    info.instance_types.setdefault(attr, cls)
                for name, lock in base.requires.items():
                    info.requires.setdefault(name, lock)
                stack.extend(base.bases)

    # -------------------------------------------------------------- checking

    def _check_class(
        self, info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> list[Finding]:
        findings: list[Finding] = []
        module = info.module

        for attr, locks in sorted(info.guarded.items()):
            if len(locks) > 1:
                findings.append(
                    Finding(
                        rule=self.name,
                        module=module.name,
                        line=info.node.lineno,
                        message=(
                            f"{info.node.name}.{attr} is guarded by multiple "
                            f"locks ({', '.join(sorted(locks))}) — two locks "
                            "exclude nobody; pick one"
                        ),
                    )
                )

        for method in info.methods():
            if method.name in ("__init__", "__post_init__"):
                continue
            entry = frozenset(
                {info.requires[method.name]} if method.name in info.requires else set()
            )
            findings.extend(self._check_method(info, classes, method, entry))
        return findings

    def _check_method(
        self,
        info: _ClassInfo,
        classes: dict[str, _ClassInfo],
        method: ast.AST,
        entry_held: frozenset[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        module = info.module
        method_name = getattr(method, "name", "?")

        def flag(line: int, message: str) -> None:
            findings.append(
                Finding(rule=self.name, module=module.name, line=line, message=message)
            )

        def check_chain(chain: list[str], line: int, held: frozenset[str]) -> None:
            attr = chain[0]
            if attr in info.locks:
                return
            if attr in info.guarded:
                locks = info.guarded[attr]
                if not locks & held:
                    want = " or ".join(sorted(locks))
                    flag(
                        line,
                        f"{info.node.name}.{method_name} accesses self.{attr} "
                        f"(guarded by {want}) outside the lock",
                    )
                return
            if attr in info.requires:
                # ``self.helper(...)`` where helper is requires-lock: the
                # call site must hold that lock.
                lock = info.requires[attr]
                if lock not in held:
                    flag(
                        line,
                        f"{info.node.name}.{method_name} calls self.{attr}() "
                        f"(requires-lock: {lock}) without holding the lock",
                    )
                return
            if attr in info.instance_types and len(chain) >= 2:
                other = classes.get(info.instance_types[attr])
                if other is None:
                    return
                inner = chain[1]
                if inner in other.guarded:
                    locks = {f"{attr}.{lock}" for lock in other.guarded[inner]}
                    if not locks & held:
                        want = " or ".join(sorted(locks))
                        flag(
                            line,
                            f"{info.node.name}.{method_name} accesses "
                            f"self.{attr}.{inner} (guarded by {want} on "
                            f"{other.node.name}) outside that lock",
                        )
                elif inner in other.requires:
                    lock = f"{attr}.{other.requires[inner]}"
                    if lock not in held:
                        flag(
                            line,
                            f"{info.node.name}.{method_name} calls "
                            f"self.{attr}.{inner}() (requires-lock: "
                            f"{other.requires[inner]} on {other.node.name}) "
                            "without holding the lock",
                        )

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, ast.With):
                new_held = held
                for item in node.items:
                    lock = _held_lock(item.context_expr)
                    if lock is not None:
                        new_held = new_held | {lock}
                for item in node.items:
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, new_held)
                return
            if isinstance(node, ast.Attribute):
                chain = _self_chain(node)
                if chain is not None:
                    check_chain(chain, node.lineno, held)
                    return  # the chain is one access; don't re-walk its spine
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        visit(method, entry_held)
        return findings

    def tables(self, project: Project) -> dict[str, list[dict[str, object]]]:
        classes = self._collect_classes(project)
        rows: list[dict[str, object]] = []
        for key in sorted(classes):
            info = classes[key]
            for attr in sorted(info.guarded):
                rows.append(
                    {
                        "class": f"{info.module.name}:{info.node.name}",
                        "attribute": attr,
                        "lock": ", ".join(sorted(info.guarded[attr])),
                    }
                )
        return {"lock guard map": rows}
