"""Content-addressed cache for sweep and analysis results.

Every batched analysis request — a :class:`repro.batch.SweepSpec`, an
allocation-curve request, an isoefficiency fit — is a pure function of
its inputs, so its result can be keyed by a *fingerprint* of those
inputs and served from a store instead of recomputed.  The cache is
two-level:

* an in-process dictionary (hit cost: one dict lookup), and
* an optional on-disk ``.npz`` store under ``cache_dir`` that survives
  process restarts and is shared by sharded workers.

Keys are SHA-256 digests of a canonical encoding of the request
(dataclass fields, enum values, array bytes), so two requests collide
only if they are semantically identical — machine parameters, stencil,
partition kind, axes, and tolerances all feed the digest.

Hit/miss statistics are tracked per cache and surfaced in the
experiment runner's report and the CLI's ``--cache-dir`` output, so a
warm cache is visible, not silent.
"""

from __future__ import annotations

import enum
import hashlib
import os
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

__all__ = [
    "CacheStats",
    "SweepCache",
    "fingerprint",
    "configure_default_cache",
    "clear_default_cache",
    "set_default_cache",
    "default_cache",
    "resolve_cache",
]


# --------------------------------------------------------------------------
# Canonical request encoding
# --------------------------------------------------------------------------


def _canonical(obj: object) -> object:
    """A hashable, repr-stable view of a request component.

    Dataclasses (machines, stencils, specs) encode as their qualified
    class name plus all field values; arrays as shape/dtype/content
    digest.  Two objects encode equal iff the model treats them as the
    same input.
    """
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return (
            "ndarray",
            data.shape,
            data.dtype.str,
            hashlib.sha256(data.tobytes()).hexdigest(),
        )
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__qualname__,
            tuple((f.name, _canonical(getattr(obj, f.name))) for f in fields(obj)),
        )
    if isinstance(obj, enum.Enum):
        return (type(obj).__qualname__, obj.value)
    if isinstance(obj, Mapping):
        return (
            "map",
            tuple(sorted((repr(k), repr(_canonical(v))) for k, v in obj.items())),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, float):
        # repr round-trips doubles exactly; hash() of floats does not
        # distinguish -0.0 and is platform-dependent for our purposes.
        return ("float", repr(obj))
    if obj is None or isinstance(obj, (str, int, bool, bytes)):
        return obj
    return ("repr", repr(obj))


def fingerprint(request: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``request``."""
    return hashlib.sha256(repr(_canonical(request)).encode()).hexdigest()


# --------------------------------------------------------------------------
# The cache itself
# --------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`SweepCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
        }

    def describe(self) -> str:
        """One-line summary, labelling a fully warm cache as such."""
        state = "warm" if self.hits and not self.misses else "cold"
        return (
            f"{self.hits} hits ({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.misses} misses [{state}]"
        )


class SweepCache:
    """Two-level (memory + optional ``.npz`` directory) result store.

    Values are mappings from array name to ``np.ndarray`` — exactly what
    the analysis layer's curve objects serialize to.  Disk writes are
    atomic (write to a temp file, then rename), so concurrent sharded
    workers sharing one ``cache_dir`` never observe torn files.
    """

    def __init__(self, cache_dir: Path | str | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, dict[str, np.ndarray]] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------- internals

    def _disk_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.npz"

    @staticmethod
    def _freeze(arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Mark cached arrays read-only.

        Hits hand out the stored arrays by reference (copying every hit
        would defeat the memory level); freezing them turns accidental
        in-place mutation — which would silently poison every later hit
        for that key — into an immediate ``ValueError``.
        """
        for a in arrays.values():
            a.flags.writeable = False
        return arrays

    def lookup(self, key: str) -> dict[str, np.ndarray] | None:
        """Fetch by fingerprint, recording the hit level (or the miss)."""
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            return hit
        path = self._disk_path(key)
        if path is not None and path.exists():
            with np.load(path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
            self._memory[key] = self._freeze(arrays)
            self.stats.disk_hits += 1
            return arrays
        self.stats.misses += 1
        return None

    def store(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        value = self._freeze(
            {name: np.array(a, copy=True) for name, a in arrays.items()}
        )
        self._memory[key] = value
        path = self._disk_path(key)
        if path is None:
            return
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **value)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------ public API

    def get_or_compute(
        self,
        request: object,
        compute: Callable[[], Mapping[str, np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """The cache's main entry point: serve ``request`` or compute it."""
        key = fingerprint(request)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        self.store(key, compute())
        # Return the stored (read-only) copy so misses and hits hand
        # back the same kind of object.
        return self._memory[key]

    def __len__(self) -> int:
        return len(self._memory)


# --------------------------------------------------------------------------
# Process-wide default cache (opt-in)
# --------------------------------------------------------------------------

_DEFAULT_CACHE: SweepCache | None = None


def configure_default_cache(cache_dir: Path | str | None = None) -> SweepCache:
    """Install (and return) the process-wide default cache.

    Analysis functions called without an explicit ``cache=`` use this
    one; until configured, they compute directly.  The experiment
    runner's ``--cache-dir`` and the CLI's ``--cache-dir`` both route
    here, including in sharded worker processes.
    """
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = SweepCache(cache_dir)
    return _DEFAULT_CACHE


def set_default_cache(cache: SweepCache | None) -> None:
    """Install an existing cache instance (or ``None``) as the default.

    The restore half of a configure/restore pair: callers that swap the
    default temporarily (the experiment runner's ``--cache-dir``) put
    the caller's cache back with this instead of clearing it.
    """
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


def clear_default_cache() -> None:
    """Remove the default cache (analysis calls compute directly again)."""
    set_default_cache(None)


def default_cache() -> SweepCache | None:
    return _DEFAULT_CACHE


def resolve_cache(cache: SweepCache | None) -> SweepCache | None:
    """An explicit cache wins; otherwise the configured default (if any)."""
    return cache if cache is not None else _DEFAULT_CACHE
