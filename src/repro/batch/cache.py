"""Content-addressed cache for sweep and analysis results.

Every batched analysis request — a :class:`repro.batch.SweepSpec`, an
allocation-curve request, an isoefficiency fit — is a pure function of
its inputs, so its result can be keyed by a *fingerprint* of those
inputs and served from a store instead of recomputed.  The cache is
two-level:

* an in-process dictionary (hit cost: one dict lookup), and
* an optional on-disk ``.npz`` store under ``cache_dir`` that survives
  process restarts and is shared by sharded workers.

Keys are SHA-256 digests of a canonical encoding of the request
(dataclass fields, enum values, array bytes), so two requests collide
only if they are semantically identical — machine parameters, stencil,
partition kind, axes, and tolerances all feed the digest.

Cross-machine dedup: plain bus machines encode as their *closed-form
constants* rather than their raw fields, so two presets whose cycle-time
surfaces are bit-identical — a ``read_write`` synchronous bus and the
``read_only`` bus with doubled constants, or two asynchronous buses
differing only in ``volume_mode`` — canonicalize to one fingerprint and
their sweeps are computed once (see :func:`_canonical_bus`).

Both tiers can be size-bounded (``max_bytes``): entries are tracked in
least-recently-used order and evicted once the tier exceeds the bound,
with eviction counts surfaced in :class:`CacheStats`.  Hit/miss
statistics are tracked per cache and surfaced in the experiment
runner's report and the CLI's ``--cache-dir`` output, so a warm cache
is visible, not silent.
"""

from __future__ import annotations

import enum
import hashlib
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.errors import InvalidParameterError
from repro.machines.bus import AsynchronousBus, SynchronousBus

__all__ = [
    "CacheStats",
    "SweepCache",
    "fingerprint",
    "max_cache_bytes",
    "configure_default_cache",
    "clear_default_cache",
    "set_default_cache",
    "default_cache",
    "resolve_cache",
]


def max_cache_bytes(max_cache_mb: float | None) -> int | None:
    """The one MiB→bytes conversion behind every ``--max-cache-mb`` flag."""
    return None if max_cache_mb is None else int(max_cache_mb * 2**20)

#: Orphaned temp files younger than this are left alone — they may
#: belong to a live writer in another process; older ones are crash
#: debris and are swept when a cache opens the directory.
ORPHAN_TMP_MAX_AGE_S = 3600.0


# --------------------------------------------------------------------------
# Canonical request encoding
# --------------------------------------------------------------------------


def _canonical_bus(obj: object) -> object | None:
    """Closed-form canonical encoding for plain bus machines, else ``None``.

    A :class:`SynchronousBus` cycle-time surface depends on its fields
    only through the products ``v·b`` and ``v·c`` where ``v`` is the
    direction factor (2 for ``read_write``, 1 for ``read_only``): every
    closed form multiplies ``(v·k)·b`` with ``v`` a power of two, so a
    ``read_write`` bus and the ``read_only`` bus with exactly doubled
    constants produce bit-identical results and share one fingerprint.
    An :class:`AsynchronousBus` never consults ``volume_mode`` at all
    (reads and writes enter its cycle separately), so the mode is
    dropped from its encoding.

    Exact ``type`` checks on purpose: subclasses (e.g. the fully
    asynchronous extension) override the formulas, so they keep the
    generic field-by-field encoding.
    """
    if type(obj) is SynchronousBus:
        v = float(obj._direction_factor())
        return ("bus-closed-form", "synchronous", repr(v * obj.b), repr(v * obj.c))
    if type(obj) is AsynchronousBus:
        return ("bus-closed-form", "asynchronous", repr(obj.b), repr(obj.c))
    return None


def _has_stable_repr(obj: object) -> bool:
    """Whether ``repr(obj)`` is safe to fingerprint.

    The default ``object.__repr__`` prints ``<... at 0x7f...>`` — a
    memory address, different in every process.  Any class that wants
    the repr fallback must override ``__repr__`` deterministically.
    """
    return type(obj).__repr__ is not object.__repr__


def _canonical(obj: object) -> object:
    """A hashable, repr-stable view of a request component.

    Dataclasses (machines, stencils, specs) encode as their qualified
    class name plus all field values; arrays as shape/dtype/content
    digest.  Two objects encode equal iff the model treats them as the
    same input — including bus presets that share a closed form (see
    :func:`_canonical_bus`).
    """
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return (
            "ndarray",
            data.shape,
            data.dtype.str,
            hashlib.sha256(data.tobytes()).hexdigest(),
        )
    bus = _canonical_bus(obj)
    if bus is not None:
        return bus
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__qualname__,
            tuple((f.name, _canonical(getattr(obj, f.name))) for f in fields(obj)),
        )
    if isinstance(obj, enum.Enum):
        return (type(obj).__qualname__, obj.value)
    if isinstance(obj, Mapping):
        # Keys go through _canonical too: a raw repr(k) of a key with a
        # default __repr__ would embed its memory address and split the
        # fingerprint across processes.
        return (
            "map",
            tuple(
                sorted(
                    (repr(_canonical(k)), repr(_canonical(v)))
                    for k, v in obj.items()
                )
            ),
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in obj)))
    if isinstance(obj, float):
        # repr round-trips doubles exactly; hash() of floats does not
        # distinguish -0.0 and is platform-dependent for our purposes.
        return ("float", repr(obj))
    if obj is None or isinstance(obj, (str, int, bool, bytes)):
        return obj
    if _has_stable_repr(obj):
        return ("repr", repr(obj))
    raise InvalidParameterError(
        f"cannot fingerprint {type(obj).__qualname__}: it relies on the "
        "default object.__repr__, which embeds the memory address and "
        "differs per process — give it a deterministic __repr__ or make "
        "it a dataclass"
    )


def fingerprint(request: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``request``."""
    return hashlib.sha256(repr(_canonical(request)).encode()).hexdigest()


# --------------------------------------------------------------------------
# The cache itself
# --------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`SweepCache`.

    Also carries the sweep-graph planner's counters (see
    :mod:`repro.graph.planner`): graphs planned against this cache
    record how many nodes they held, how many sibling requests fused
    onto shared vectorized evaluations, how many subgraph instances
    deduplicated onto already-planned nodes, and which executor ran the
    evaluations — so a report can show not just hit rates but how much
    work the planner removed before the cache was even consulted.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    memory_evictions: int = 0
    disk_evictions: int = 0
    nodes_planned: int = 0
    siblings_fused: int = 0
    subgraphs_deduped: int = 0
    #: Vectorized evaluations per executor name ({"numpy": 12, ...}).
    executor_runs: dict[str, int] = field(default_factory=dict)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def evictions(self) -> int:
        return self.memory_evictions + self.disk_evictions

    def count_executor_run(self, name: str, runs: int = 1) -> None:
        self.executor_runs[name] = self.executor_runs.get(name, 0) + int(runs)

    def snapshot(self) -> dict[str, int | dict[str, int]]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "memory_evictions": self.memory_evictions,
            "disk_evictions": self.disk_evictions,
            "nodes_planned": self.nodes_planned,
            "siblings_fused": self.siblings_fused,
            "subgraphs_deduped": self.subgraphs_deduped,
            "executor_runs": dict(self.executor_runs),
        }

    def merge(self, other: "CacheStats | Mapping[str, object]") -> "CacheStats":
        """Add another cache's counters (a worker's snapshot) into this one.

        Multi-process paths — sharded workers, runner pools, the sweep
        service — each count in their own process; aggregating their
        snapshots is how a report shows the true totals instead of
        silently dropping worker activity.
        """
        counts = other.snapshot() if isinstance(other, CacheStats) else other
        self.memory_hits += int(counts.get("memory_hits", 0))
        self.disk_hits += int(counts.get("disk_hits", 0))
        self.misses += int(counts.get("misses", 0))
        self.memory_evictions += int(counts.get("memory_evictions", 0))
        self.disk_evictions += int(counts.get("disk_evictions", 0))
        self.nodes_planned += int(counts.get("nodes_planned", 0))
        self.siblings_fused += int(counts.get("siblings_fused", 0))
        self.subgraphs_deduped += int(counts.get("subgraphs_deduped", 0))
        runs = counts.get("executor_runs", {})
        if isinstance(runs, Mapping):
            for name, n in runs.items():
                self.count_executor_run(str(name), int(n))
        return self

    def describe(self) -> str:
        """One-line summary, labelling a fully warm cache as such."""
        state = "warm" if self.hits and not self.misses else "cold"
        line = (
            f"{self.hits} hits ({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.misses} misses [{state}]"
        )
        if self.evictions:
            line += f", {self.evictions} evictions"
        if self.nodes_planned:
            executors = "+".join(sorted(self.executor_runs)) or "none"
            line += (
                f"; graph: {self.nodes_planned} nodes planned, "
                f"{self.siblings_fused} fused, "
                f"{self.subgraphs_deduped} deduped [{executors}]"
            )
        return line


class SweepCache:
    """Two-level (memory + optional ``.npz`` directory) result store.

    Values are mappings from array name to ``np.ndarray`` — exactly what
    the analysis layer's curve objects serialize to.  Disk writes are
    atomic (write to a temp file, then rename), so concurrent sharded
    workers sharing one ``cache_dir`` never observe torn files; temp
    files orphaned by a worker that crashed mid-write are swept the
    next time a cache opens the directory.

    ``max_bytes`` bounds each tier independently: the memory dictionary
    evicts least-recently-used entries past the bound, and the ``.npz``
    store deletes its oldest files (disk hits refresh a file's age) so
    the directory never outgrows the configured size.  The entry being
    served or written is never evicted, so a single oversized result
    still works — the bound is a steady-state ceiling, not a hard
    admission limit.
    """

    def __init__(
        self,
        cache_dir: Path | str | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise InvalidParameterError(
                f"max_bytes must be positive (or None for unbounded), got {max_bytes}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_bytes = max_bytes
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._sweep_orphaned_tmp_files()
        self._memory: OrderedDict[str, dict[str, np.ndarray]] = OrderedDict()  # guarded-by: _lock
        # Tier mutations are serialized so threaded consumers (the sweep
        # service handles each HTTP request on its own thread) see
        # consistent LRU order and stats.  Computes never run under the
        # lock — get_or_compute only locks the lookup and the store.
        self._lock = threading.RLock()
        self.stats = CacheStats()  # guarded-by: _lock

    # ------------------------------------------------------------- internals

    def _disk_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.npz"

    def _sweep_orphaned_tmp_files(self) -> int:
        """Remove crash debris (stale ``*.npz.tmp*`` files) from the dir.

        A worker killed between ``mkstemp`` and ``os.replace`` leaves
        its temp file behind forever; they are never read (lookups only
        open ``<key>.npz``) but would accumulate unbounded.  Fresh temp
        files are left alone — they may belong to a live writer in
        another process.
        """
        removed = 0
        cutoff = time.time() - ORPHAN_TMP_MAX_AGE_S
        for path in self.cache_dir.glob("*.npz.tmp*"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # raced with another sweeper or a live writer
        return removed

    @staticmethod
    def _freeze(arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Mark cached arrays read-only.

        Hits hand out the stored arrays by reference (copying every hit
        would defeat the memory level); freezing them turns accidental
        in-place mutation — which would silently poison every later hit
        for that key — into an immediate ``ValueError``.
        """
        for a in arrays.values():
            a.flags.writeable = False
        return arrays

    @staticmethod
    def _entry_nbytes(arrays: Mapping[str, np.ndarray]) -> int:
        return sum(a.nbytes for a in arrays.values())

    def _evict_memory(self, protect: str) -> None:  # requires-lock: _lock
        """Drop least-recently-used memory entries past ``max_bytes``.

        ``protect`` (the entry just stored or fetched) is never evicted
        even when it alone exceeds the bound — callers hold a reference
        to it and hits must stay hits.
        """
        if self.max_bytes is None:
            return
        total = sum(self._entry_nbytes(v) for v in self._memory.values())
        while total > self.max_bytes and len(self._memory) > 1:
            key = next(iter(self._memory))
            if key == protect:
                # LRU order puts the protected key first only when it is
                # the sole survivor-to-be; stop rather than rotate.
                break
            total -= self._entry_nbytes(self._memory.pop(key))
            self.stats.memory_evictions += 1

    def _evict_disk(self, protect: str) -> None:
        """Delete oldest ``.npz`` files until the store fits ``max_bytes``.

        Ages come from mtimes, which disk hits refresh — so the policy
        is LRU, not FIFO.  Another process may race the unlink; a
        vanished file just means the eviction already happened.
        """
        if self.max_bytes is None or self.cache_dir is None:
            return
        entries = []
        for path in self.cache_dir.glob("*.npz"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        protected = f"{protect}.npz"
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if path.name == protected:
                continue
            try:
                path.unlink()
            except OSError:
                pass
            total -= size
            with self._lock:
                self.stats.disk_evictions += 1

    # -------------------------------------------------- disk-tier primitives

    def _disk_fetch(self, key: str) -> dict[str, np.ndarray] | None:
        """Read one entry from the slow tier, or ``None``.

        A truncated or garbage file — a crashed writer on a filesystem
        without atomic rename, manual tampering — is a *miss*, not a
        crash: the bad file is discarded so the recompute can rewrite
        it.  Remote tiers (the sweep service's client cache) override
        this pair of hooks.
        """
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except Exception:
            # Corrupt entry: drop it and treat the lookup as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh LRU age; hot entries survive eviction
        except OSError:
            pass
        return arrays

    def _disk_put(self, key: str, value: Mapping[str, np.ndarray]) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        fd, tmp = tempfile.mkstemp(dir=str(self.cache_dir), suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **value)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._evict_disk(protect=key)

    # ------------------------------------------------------------ public API

    def lookup(self, key: str) -> dict[str, np.ndarray] | None:
        """Fetch by fingerprint, recording the hit level (or the miss)."""
        return self.lookup_level(key)[0]

    def lookup_level(
        self, key: str
    ) -> tuple[dict[str, np.ndarray] | None, str | None]:
        """Like :meth:`lookup`, also reporting which tier answered.

        Returns ``(arrays, "memory"|"disk")`` on a hit and
        ``(None, None)`` on a miss.  The sweep service uses the level to
        label responses; everything else can ignore it.
        """
        with self._lock:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return hit, "memory"
            arrays = self._disk_fetch(key)
            if arrays is not None:
                value = self._freeze(arrays)
                self._memory[key] = value
                self._evict_memory(protect=key)
                self.stats.disk_hits += 1
                return value, "disk"
            self.stats.misses += 1
            return None, None

    def store(
        self, key: str, arrays: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Insert an entry in both tiers; returns the frozen stored value.

        Callers use the return value rather than re-reading
        ``self._memory`` — a bounded cache may evict any entry but the
        one just stored, and even that guarantee is easier to keep out
        of callers' way.
        """
        value = self._freeze(
            {name: np.array(a, copy=True) for name, a in arrays.items()}
        )
        with self._lock:
            self._memory[key] = value
            self._memory.move_to_end(key)
            self._evict_memory(protect=key)
        # The slow tier (atomic .npz write + eviction scan, or the
        # remote daemon round trip) runs outside the lock so concurrent
        # memory-tier hits in a threaded server never stall behind IO.
        self._disk_put(key, value)
        return value

    def get_or_compute(
        self,
        request: object,
        compute: Callable[[], Mapping[str, np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """The cache's main entry point: serve ``request`` or compute it."""
        key = fingerprint(request)
        cached = self.lookup(key)
        if cached is not None:
            return cached
        # Return the stored (read-only) copy so misses and hits hand
        # back the same kind of object.
        return self.store(key, compute())

    def flush(self) -> int:
        """Write memory-tier entries missing on disk; returns the count.

        :meth:`store` already writes through to disk synchronously, so
        this is normally a no-op — it exists for graceful shutdown,
        where entries whose disk twin was evicted (the disk tier's LRU
        bound is independent of memory's) or whose write failed
        transiently get one more chance to survive the restart.  A
        memory-only cache (no ``cache_dir``) flushes nothing.
        """
        if self.cache_dir is None:
            return 0
        with self._lock:
            snapshot = list(self._memory.items())
        written = 0
        for key, value in snapshot:
            path = self._disk_path(key)
            if path is not None and not path.exists():
                self._disk_put(key, value)
                written += 1
        return written

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def stats_snapshot(self) -> dict[str, int | dict[str, int]]:
        """A consistent copy of the counters, taken under the lock.

        Reading ``cache.stats`` field-by-field from another thread can
        tear — a hit that lands between two reads shows up in ``hits``
        but not in ``memory_hits``.  Consumers that report stats (the
        service's ``/v1/stats``) take this snapshot instead.
        """
        with self._lock:
            return self.stats.snapshot()


# --------------------------------------------------------------------------
# Process-wide default cache (opt-in)
# --------------------------------------------------------------------------

_DEFAULT_CACHE: SweepCache | None = None


def configure_default_cache(
    cache_dir: Path | str | None = None, max_bytes: int | None = None
) -> SweepCache:
    """Install (and return) the process-wide default cache.

    Analysis functions called without an explicit ``cache=`` use this
    one; until configured, they compute directly.  The experiment
    runner's ``--cache-dir`` and the CLI's ``--cache-dir`` both route
    here, including in sharded worker processes.
    """
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = SweepCache(cache_dir, max_bytes=max_bytes)
    return _DEFAULT_CACHE


def set_default_cache(cache: SweepCache | None) -> None:
    """Install an existing cache instance (or ``None``) as the default.

    The restore half of a configure/restore pair: callers that swap the
    default temporarily (the experiment runner's ``--cache-dir``) put
    the caller's cache back with this instead of clearing it.
    """
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


def clear_default_cache() -> None:
    """Remove the default cache (analysis calls compute directly again)."""
    set_default_cache(None)


def default_cache() -> SweepCache | None:
    return _DEFAULT_CACHE


def resolve_cache(cache: SweepCache | None) -> SweepCache | None:
    """An explicit cache wins; otherwise the configured default (if any)."""
    return cache if cache is not None else _DEFAULT_CACHE
