"""Lockstep-array replica simulation: the event-sim island, vectorized.

:func:`repro.sim.replica.simulate_replica` advances one (machine, N, P,
seed) replica at a time through Python event models — exactly the state
``repro.core`` was in before the batch rewrite.  This module is its
vectorized twin: many replicas advance *in lockstep* through the same
phase structure, with the replica axis living in NumPy arrays.

The advance is phase-synchronous and bit-exact by construction:

* **geometry once per configuration** — replicas sharing (N, P) share
  their decomposition, halo volumes, link phases, and banyan stages;
  those are computed by the *oracle's own* scalar functions once per
  unique configuration, never per replica;
* **barrier bus phases** — the oracle's FIFO is a chain of sequential
  adds ``t → t + w₀b → t + w₀b + w₁b → …``, which is exactly
  ``np.cumsum`` over ``[t, w₀b, w₁b, …]`` (prepending ``t`` preserves
  the oracle's addition order; zero-word ranks contribute ``+0.0``,
  bit-exact to being skipped);
* **pipelined writes** — per-replica stable argsort by (ready, rank)
  reproduces the oracle's ``sorted(key=(ready, processor))`` order,
  then a scan over the *rank* axis applies ``max(free, ready) + hold``
  with every replica in flight at once;
* **asynchronous drain** — per-rank word-ready tensors are merged with
  one ``np.sort`` (the oracle's merge is ascending in ready time, and
  equal-ready words holding the same ``b`` finish identically in any
  tie order), then a scan over the global word sequence drains the bus;
* **hypercube / banyan** — communication is geometry-only, so the
  cycle is a broadcast add of the per-configuration comm time onto the
  per-replica jittered compute maximum.

Loops over the rank axis or the unique-configuration set are fine —
they are O(P) and O(#configs); the *replica* axis is never iterated in
Python, which the vectorization lint enforces for this module.

Randomness is the stateless counter RNG of :mod:`repro.sim.rng`: the
seed array *is* the canonical RNG state, so it feeds the request
fingerprint directly and the purity lint has nothing to object to.

Memory note: the asynchronous drain materializes a ``[replicas, P,
max_words]`` ready tensor per configuration group — at the validation
scales used here (P ≤ 64, a few hundred halo words) that is a few
megabytes per thousand replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Sequence

import numpy as np

from repro.batch.cache import SweepCache, resolve_cache
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError, SimulationError
from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.partitioning.decomposition import decomposition_for
from repro.sim.iteration import halo_volumes, neighbour_comm_time
from repro.sim.network.banyan_sim import read_phase_time
from repro.sim.rng import MAX_SEED, jitter_factor_grid
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = [
    "SIM_MODES",
    "ReplicaBatchResult",
    "ReplicaBatchSpec",
    "machine_sim_tag",
    "replica_request",
    "simulate_replicas",
    "simulate_replicas_cached",
]

SIM_MODES = ("barrier", "pipelined")


def _as_int_tuple(values: Sequence[int], label: str) -> tuple[int, ...]:
    try:
        out = tuple(int(v) for v in values)
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"{label} must be a sequence of integers, got {values!r}"
        ) from None
    if not out:
        raise InvalidParameterError(f"{label} must be non-empty")
    return out


@dataclass(frozen=True)
class ReplicaBatchSpec:
    """A batch of replicas: parallel (N, P, seed) tuples plus shared knobs.

    ``grid_sides``, ``processors``, and ``seeds`` are parallel arrays —
    replica ``r`` simulates an ``n_r × n_r`` problem on ``p_r``
    processors with RNG seed ``seed_r``.  Heterogeneous batches are
    fine; replicas are grouped by unique (N, P) internally.
    """

    machine: Architecture
    stencil: Stencil
    kind: PartitionKind
    grid_sides: tuple[int, ...]
    processors: tuple[int, ...]
    seeds: tuple[int, ...]
    t_flop: float = 1e-6
    mode: str = "barrier"
    jitter: float = 0.0

    def __post_init__(self) -> None:
        lengths = {
            len(self.grid_sides),
            len(self.processors),
            len(self.seeds),
        }
        if len(lengths) != 1:
            raise InvalidParameterError(
                "grid_sides, processors, and seeds must be parallel arrays; "
                f"got lengths {len(self.grid_sides)}/{len(self.processors)}"
                f"/{len(self.seeds)}"
            )
        if not self.grid_sides:
            raise InvalidParameterError("replica batch must be non-empty")
        for n in self.grid_sides:
            if n < 1:
                raise InvalidParameterError("grid sides must be >= 1")
        for n, p in zip(self.grid_sides, self.processors):
            if p < 1:
                raise InvalidParameterError("processor counts must be >= 1")
            if p > n * n:
                raise InvalidParameterError(
                    f"cannot place {p} processors on an {n}x{n} grid"
                )
        for seed in self.seeds:
            if not 0 <= seed <= MAX_SEED:
                raise InvalidParameterError(
                    f"seeds must lie in [0, 2**64), got {seed}"
                )
        if self.mode not in SIM_MODES:
            raise InvalidParameterError(
                f"mode must be one of {SIM_MODES}, got {self.mode!r}"
            )
        if self.t_flop <= 0:
            raise InvalidParameterError("t_flop must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise InvalidParameterError(
                f"jitter must lie in [0, 1), got {self.jitter!r}"
            )

    @classmethod
    def build(
        cls,
        machine: Architecture,
        stencil: Stencil,
        kind: PartitionKind,
        grid_sides: Sequence[int] | int,
        processors: Sequence[int] | int,
        seeds: Sequence[int] | int,
        *,
        t_flop: float = 1e-6,
        mode: str = "barrier",
        jitter: float = 0.0,
    ) -> "ReplicaBatchSpec":
        """Broadcast scalars / length-1 sequences against the longest axis."""
        columns = [
            _as_int_tuple([v] if isinstance(v, int) else v, label)
            for v, label in (
                (grid_sides, "grid_sides"),
                (processors, "processors"),
                (seeds, "seeds"),
            )
        ]
        width = max(len(col) for col in columns)
        stretched = []
        for col, label in zip(columns, ("grid_sides", "processors", "seeds")):
            if len(col) == width:
                stretched.append(col)
            elif len(col) == 1:
                stretched.append(col * width)
            else:
                raise InvalidParameterError(
                    f"{label} has length {len(col)}, expected 1 or {width}"
                )
        return cls(
            machine=machine,
            stencil=stencil,
            kind=kind,
            grid_sides=stretched[0],
            processors=stretched[1],
            seeds=stretched[2],
            t_flop=float(t_flop),
            mode=mode,
            jitter=float(jitter),
        )

    @classmethod
    def monte_carlo(
        cls,
        machine: Architecture,
        stencil: Stencil,
        kind: PartitionKind,
        n: int,
        n_processors: int,
        replicas: int,
        *,
        seed: int = 0,
        t_flop: float = 1e-6,
        mode: str = "barrier",
        jitter: float = 0.0,
    ) -> "ReplicaBatchSpec":
        """One configuration, ``replicas`` consecutive seeds from ``seed``."""
        if replicas < 1:
            raise InvalidParameterError("replicas must be >= 1")
        return cls.build(
            machine,
            stencil,
            kind,
            int(n),
            int(n_processors),
            range(int(seed), int(seed) + int(replicas)),
            t_flop=t_flop,
            mode=mode,
            jitter=jitter,
        )

    @property
    def n_replicas(self) -> int:
        return len(self.seeds)


@dataclass(frozen=True)
class ReplicaBatchResult:
    """Per-replica cycle times, parallel to the spec's replica axis."""

    machine_name: str
    mode: str
    jitter: float
    grid_sides: np.ndarray
    processors: np.ndarray
    seeds: np.ndarray
    cycle_times: np.ndarray

    @property
    def n_replicas(self) -> int:
        return int(self.cycle_times.shape[0])

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The cache/service wire shape (named arrays)."""
        return {
            "grid_sides": self.grid_sides,
            "processors": self.processors,
            "seeds": self.seeds,
            "cycle_times": self.cycle_times,
        }

    def band(self) -> dict[str, float]:
        """Ensemble statistics of the cycle-time distribution."""
        cycles = self.cycle_times
        return {
            "replicas": float(cycles.shape[0]),
            "mean": float(np.mean(cycles)),
            "std": float(np.std(cycles)),
            "min": float(np.min(cycles)),
            "q05": float(np.quantile(cycles, 0.05)),
            "q95": float(np.quantile(cycles, 0.95)),
            "max": float(np.max(cycles)),
        }


# --------------------------------------------------------------------------
# Cache fingerprinting
# --------------------------------------------------------------------------


def machine_sim_tag(machine: Architecture) -> tuple:
    """Raw-field canonical encoding of a machine for *simulation* requests.

    The cache's default encoding collapses plain bus presets to their
    closed-form constants (``v·b``, ``v·c``) because every closed form
    consumes them only through those products.  The event simulator does
    not: it charges bus occupancy ``b`` and requester overhead ``c``
    separately, word by word, so two presets with one closed form can
    have different simulated timelines.  Simulation fingerprints
    therefore encode the machine's raw dataclass fields.
    """
    items = tuple(
        (f.name, repr(getattr(machine, f.name)))
        for f in dataclass_fields(machine)
    )
    return ("sim-machine", type(machine).__qualname__, items)


def replica_request(spec: ReplicaBatchSpec) -> tuple:
    """The :class:`~repro.batch.cache.SweepCache` request for a batch.

    The seed array is the canonical RNG state — the counter RNG has no
    other state — so the fingerprint covers the randomness completely
    and deterministically.
    """
    return (
        "simulate_replicas",
        machine_sim_tag(spec.machine),
        spec.stencil,
        spec.kind,
        np.asarray(spec.grid_sides, dtype=np.int64),
        np.asarray(spec.processors, dtype=np.int64),
        np.asarray(spec.seeds, dtype=np.uint64),
        ("float", repr(float(spec.t_flop))),
        spec.mode,
        ("float", repr(float(spec.jitter))),
    )


# --------------------------------------------------------------------------
# Vectorized phase kernels (bit-exact to repro.sim.network FIFO models)
# --------------------------------------------------------------------------


def _phase_completions_from_zero(
    words: np.ndarray, b: float, c: float
) -> np.ndarray:
    """Barrier-phase completions when every rank is ready at t = 0.

    The oracle's FIFO serves nonzero requests in rank order from a bus
    free at 0.0; each grant finish is the running sum of ``wb`` terms —
    ``np.cumsum`` performs the identical sequential additions (zero-word
    ranks add ``0.0`` to a non-negative accumulator, bit-exact to being
    skipped) — and the requester perceives ``+ w·c`` on top.  Zero-word
    ranks complete at their ready time, 0.0.
    """
    occupancy = np.cumsum(words * b)
    return np.where(words > 0, occupancy + words * c, 0.0)


def _barrier_write_cycles(
    t2: np.ndarray, words: np.ndarray, b: float, c: float
) -> np.ndarray:
    """Write-phase end per replica when all ranks are ready at ``t2[r]``.

    Prepending ``t2`` to the per-rank occupancy row before the cumsum
    reproduces the oracle's addition order exactly: the first grant
    starts at ``max(0, t2) = t2`` and each later one chains off the
    previous finish.
    """
    n_replicas = t2.shape[0]
    busy = np.broadcast_to(words * b, (n_replicas, words.shape[0]))
    chained = np.cumsum(np.concatenate([t2[:, None], busy], axis=1), axis=1)
    occupancy = chained[:, 1:]
    done = np.where(words[None, :] > 0, occupancy + words * c, t2[:, None])
    return done.max(axis=1)


def _fifo_write_cycles(
    ready: np.ndarray, words: np.ndarray, b: float, c: float
) -> np.ndarray:
    """Write-phase end when rank ready times differ per replica.

    Per replica, a stable argsort by ready time (ties keep rank order)
    reproduces the oracle's ``sorted(key=(ready, processor))`` FIFO
    order; the scan below runs over the *rank-slot* axis with every
    replica advanced at once, applying the oracle's
    ``finish = max(free, ready) + w·b`` grant rule per slot.
    """
    order = np.argsort(ready, axis=1, kind="stable")
    sorted_ready = np.take_along_axis(ready, order, axis=1)
    sorted_words = words[order]
    free = np.zeros(ready.shape[0])
    peak = np.zeros(ready.shape[0])
    for slot in range(order.shape[1]):  # rank slots, never the replica axis
        slot_ready = sorted_ready[:, slot]
        slot_words = sorted_words[:, slot]
        served = slot_words > 0
        finish = np.maximum(free, slot_ready) + slot_words * b
        done = np.where(served, finish + slot_words * c, slot_ready)
        free = np.where(served, finish, free)
        peak = np.maximum(peak, done)
    return peak


def _async_drain_cycles(
    t1: float,
    compute_end: np.ndarray,
    writes: np.ndarray,
    intervals: np.ndarray,
    b: float,
) -> np.ndarray:
    """Asynchronous write backlog: merged word streams through the bus.

    Rank ``p``'s word ``i`` is ready at ``t1 + (i+1)·interval[r, p]``;
    the oracle merges all words ascending by ready time and serves each
    for ``b``.  Equal-ready words finish identically in any tie order
    (same hold), so one ``np.sort`` per replica is the merge, and the
    scan runs over the global word sequence — shared by every replica
    in the configuration group — never the replica axis.
    """
    total_words = int(writes.sum())
    if total_words == 0:
        return compute_end  # drain ends at 0.0; compute always wins
    max_words = int(writes.max())
    counts = np.arange(1, max_words + 1, dtype=np.float64)
    ready = t1 + counts[None, None, :] * intervals[:, :, None]
    valid = np.arange(max_words)[None, None, :] < writes[None, :, None]
    ready = np.where(valid, ready, np.inf)
    merged = np.sort(ready.reshape(ready.shape[0], -1), axis=1)
    merged = merged[:, :total_words]
    free = np.zeros(merged.shape[0])
    for word in range(total_words):  # global word sequence, not replicas
        free = np.maximum(free, merged[:, word]) + b
    return np.maximum(compute_end, free)


# --------------------------------------------------------------------------
# The batched advance
# --------------------------------------------------------------------------


def _config_groups(
    sides: np.ndarray, procs: np.ndarray
) -> dict[tuple[int, int], list[int]]:
    """Replica row indices grouped by unique (N, P) configuration."""
    groups: dict[tuple[int, int], list[int]] = {}
    for row, key in enumerate(zip(sides.tolist(), procs.tolist())):
        groups.setdefault(key, []).append(row)
    return groups


def _advance_config(
    machine: Architecture,
    spec: ReplicaBatchSpec,
    n: int,
    p: int,
    seeds: np.ndarray,
) -> np.ndarray:
    """Advance every replica of one (N, P) configuration in lockstep."""
    workload = Workload(n=n, stencil=spec.stencil, t_flop=spec.t_flop)
    dec_kind = "strip" if spec.kind is PartitionKind.STRIP else "block"
    decomposition = decomposition_for(n, p, dec_kind)
    point_time = workload.flops_per_point * workload.t_flop
    areas = np.asarray(
        [part.area for part in decomposition.partitions], dtype=np.int64
    )
    factors = jitter_factor_grid(seeds, p, spec.jitter)
    compute = (areas * point_time)[None, :] * factors

    if p == 1:
        return np.ascontiguousarray(compute[:, 0])

    read_list, write_list = halo_volumes(decomposition, spec.stencil)
    reads = np.asarray(read_list, dtype=np.int64)
    writes = np.asarray(write_list, dtype=np.int64)

    if isinstance(machine, SynchronousBus):
        read_done = _phase_completions_from_zero(reads, machine.b, machine.c)
        if spec.mode == "barrier":
            t2 = read_done.max() + compute.max(axis=1)
            return _barrier_write_cycles(t2, writes, machine.b, machine.c)
        ready = read_done[None, :] + compute
        return _fifo_write_cycles(ready, writes, machine.b, machine.c)
    if isinstance(machine, AsynchronousBus):
        t1 = float(
            _phase_completions_from_zero(reads, machine.b, machine.c).max()
        )
        compute_end = t1 + compute.max(axis=1)
        intervals = point_time * factors
        return _async_drain_cycles(t1, compute_end, writes, intervals, machine.b)
    if isinstance(machine, Hypercube):  # covers MeshGrid subclass
        comm = neighbour_comm_time(machine, decomposition, spec.stencil)
        return comm + compute.max(axis=1)
    if isinstance(machine, BanyanNetwork):
        read_phase = read_phase_time(read_list, machine.w, p)
        return read_phase + compute.max(axis=1)
    raise SimulationError(
        f"no replica simulator for machine {machine.name!r}"
    )


def simulate_replicas(spec: ReplicaBatchSpec) -> ReplicaBatchResult:
    """Advance every replica in ``spec``; bit-equal to the scalar oracle.

    The contract (pinned by the property tests in
    ``tests/batch/test_sim.py``): for every replica ``r``,
    ``cycle_times[r]`` equals
    ``simulate_replica(machine, n_r, p_r, stencil, seed_r, ...)``
    bit for bit — across machine models, both stencils, both bus
    scheduling modes, and any jitter in [0, 1).
    """
    sides = np.asarray(spec.grid_sides, dtype=np.int64)
    procs = np.asarray(spec.processors, dtype=np.int64)
    seeds = np.asarray(spec.seeds, dtype=np.uint64)
    cycles = np.empty(sides.shape[0], dtype=np.float64)
    for (n, p), rows in _config_groups(sides, procs).items():
        idx = np.asarray(rows, dtype=np.intp)
        cycles[idx] = _advance_config(spec.machine, spec, n, p, seeds[idx])
    return ReplicaBatchResult(
        machine_name=spec.machine.name,
        mode=spec.mode,
        jitter=spec.jitter,
        grid_sides=sides,
        processors=procs,
        seeds=seeds,
        cycle_times=cycles,
    )


def simulate_replicas_cached(
    spec: ReplicaBatchSpec, cache: SweepCache | None = None
) -> ReplicaBatchResult:
    """Serve a replica batch through the sweep cache (explicit or default)."""
    store = resolve_cache(cache)
    if store is None:
        return simulate_replicas(spec)
    arrays = store.get_or_compute(
        replica_request(spec), lambda: simulate_replicas(spec).to_arrays()
    )
    return ReplicaBatchResult(
        machine_name=spec.machine.name,
        mode=spec.mode,
        jitter=spec.jitter,
        grid_sides=arrays["grid_sides"],
        processors=arrays["processors"],
        seeds=arrays["seeds"],
        cycle_times=arrays["cycle_times"],
    )
