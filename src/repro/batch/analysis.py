"""Array-first analysis: whole-curve optima on the batch substrate.

:mod:`repro.core` answers the paper's analysis questions — optimal
allocation, optimal speedup, minimal problem size, maximum useful
processors, crossovers, isoefficiency — one ``(machine, n)`` point at a
time.  This module answers them over dense axes in a handful of NumPy
reductions: candidate areas are stacked and evaluated through the
machines' vectorized ``cycle_time_area_grid`` surface, integer
feasibility is restored by vectorized floor/ceil rounding, and search
loops (crossover, isoefficiency) evaluate whole frontiers per step
instead of single points.

Scalar-equivalence contract: every element of every curve equals the
corresponding :mod:`repro.core` routine **bit for bit** — the functions
here transcribe the scalar floating-point operations in the same order,
and ``tests/batch/test_analysis.py`` pins the equality across all four
machine families, both partition kinds, and both stencils.  The scalar
path remains the oracle; this layer is how it is served at scale.

The public curve functions are *eager shims over the sweep graph*
(:mod:`repro.graph`): each call builds the corresponding lazy
:class:`~repro.graph.nodes.Node` and evaluates it through the planner,
so caching, sibling fusion, and executor choice live in one place for
every consumer.  The ``_compute_*`` kernels below remain the NumPy
executor's implementation — same operations, same order, same bits.

All entry points accept an optional ``cache`` (see
:mod:`repro.batch.cache`); when omitted, the process-wide default cache
is used if one has been configured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.batch.cache import SweepCache, resolve_cache
from repro.batch.curves import _libm_pow, bus_optimal_area_curve
from repro.batch.engine import SweepResult, SweepSpec
from repro.core.crossover import CrossoverResult
from repro.core.isoefficiency import IsoefficiencyFit
from repro.core.minimal_size import _volume_coefficient
from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.bus import BusArchitecture
from repro.machines.hypercube import Hypercube
from repro.stencils.perimeter import PartitionKind, perimeters_required
from repro.stencils.stencil import Stencil

__all__ = [
    "AllocationCurve",
    "optimal_allocation_curve",
    "max_useful_processors_curve",
    "minimal_problem_size_curve",
    "speedup_ratio_curve",
    "strip_square_ratio_curve",
    "find_crossover_grid_size_batch",
    "grid_for_efficiency_curve",
    "isoefficiency_exponent_grid",
    "scaled_speedup_hypercube_curve",
    "scaled_speedup_banyan_curve",
    "cached_run_sweep",
]


def _libm_log2(values: np.ndarray) -> np.ndarray:  # lint: disable=vectorization-guard -- deliberate scalar loop: the bit-equality contract needs libm log2 (math.log2); np.log2 may differ by 1 ULP
    """Elementwise ``log2`` through libm (matches scalar ``math.log2``)."""
    arr = np.asarray(values, dtype=float)
    out = np.array([math.log2(v) for v in arr.ravel()])
    return out.reshape(arr.shape)


# --------------------------------------------------------------------------
# Optimal allocation over a grid-side axis
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AllocationCurve:
    """Optimal allocations over a grid-side sweep, as parallel arrays.

    Element ``i`` equals the scalar
    :func:`repro.core.allocation.optimize_allocation` at
    ``grid_sides[i]`` bit for bit, including the integer-constrained
    variant and the machine-size cap.
    """

    grid_sides: np.ndarray
    processors: np.ndarray
    area: np.ndarray
    cycle_time: np.ndarray
    speedup: np.ndarray
    efficiency: np.ndarray
    regime: tuple[str, ...]
    kind: PartitionKind

    def __len__(self) -> int:
        return int(self.grid_sides.size)

    # ------------------------------------------------------- cache plumbing

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {
            "grid_sides": self.grid_sides,
            "processors": self.processors,
            "area": self.area,
            "cycle_time": self.cycle_time,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "regime": np.asarray(self.regime),
        }

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], kind: PartitionKind
    ) -> "AllocationCurve":
        return cls(
            grid_sides=np.asarray(arrays["grid_sides"]),
            processors=np.asarray(arrays["processors"]),
            area=np.asarray(arrays["area"]),
            cycle_time=np.asarray(arrays["cycle_time"]),
            speedup=np.asarray(arrays["speedup"]),
            efficiency=np.asarray(arrays["efficiency"]),
            regime=tuple(str(r) for r in arrays["regime"]),
            kind=kind,
        )


def _allocation_request(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    n: np.ndarray,
    t_flop: float,
    max_processors: float | None,
    integer: bool,
) -> tuple:
    """The cache fingerprint request for one allocation-curve call.

    Shared by :func:`optimal_allocation_curve` and the sharded evaluator
    so both paths hit the same cache entries.
    """
    return (
        "optimal_allocation_curve",
        machine,
        stencil,
        kind,
        n,
        ("float", repr(float(t_flop))),
        None if max_processors is None else ("float", repr(float(max_processors))),
        bool(integer),
    )


def _admissible_range_grid(
    n: np.ndarray,
    n2: np.ndarray,
    kind: PartitionKind,
    max_processors: float | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.core.allocation.admissible_area_range`."""
    a_min = n.copy() if kind is PartitionKind.STRIP else np.ones_like(n)
    if max_processors is not None:
        if max_processors < 1:
            raise InvalidParameterError("max_processors must be >= 1")
        a_min = np.maximum(a_min, n2 / max_processors)
    return np.minimum(a_min, n2), n2


def _integer_candidate_slots(
    n: np.ndarray,
    n2: np.ndarray,
    kind: PartitionKind,
    continuous: np.ndarray,
    a_min: np.ndarray,
    a_max: np.ndarray,
) -> list[np.ndarray]:
    """Vectorized ``repro.core.allocation._integer_candidates``.

    Returns two fixed slots per continuous candidate: the floor- and
    ceil-derived feasible areas (strips round the row count, squares
    the processor count).  A slot whose candidate falls outside the
    admissible range is replaced by the nearest in-range alternative —
    the other slot, or the continuous candidate itself when both are
    infeasible — mirroring the scalar fallback.  Duplicated slot values
    cannot change an argmin (first occurrence wins).
    """
    if kind is PartitionKind.STRIP:
        h = continuous / n
        lo = np.clip(np.floor(h), 1.0, n) * n
        hi = np.clip(np.ceil(h), 1.0, n) * n
    else:
        p = n2 / continuous
        lo = n2 / np.maximum(np.floor(p), 1.0)
        hi = n2 / np.maximum(np.ceil(p), 1.0)
    valid_lo = (a_min - 1e-9 <= lo) & (lo <= a_max + 1e-9)
    valid_hi = (a_min - 1e-9 <= hi) & (hi <= a_max + 1e-9)
    slot_a = np.where(valid_lo, lo, np.where(valid_hi, hi, continuous))
    slot_b = np.where(valid_hi, hi, slot_a)
    return [slot_a, slot_b]


def optimal_allocation_curve(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    integer: bool = False,
    cache: SweepCache | None = None,
) -> AllocationCurve:
    """Vectorized :func:`repro.core.allocation.optimize_allocation` over ``n``.

    Stacks every candidate area — admissible-range endpoints, the bus
    interior optimum, and (with ``integer=True``) their floor/ceil
    roundings — and evaluates all of them across the whole sweep in one
    broadcast ``cycle_time_area_grid`` call per candidate, then selects
    per grid side with the scalar optimizer's exact tie-breaking (first
    strict minimum; the serial run wins ties).
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.allocation_curve(
        machine, stencil, kind, grid_sides, t_flop, max_processors, integer
    )
    arrays = graph_evaluate([node], cache=resolve_cache(cache))[0]
    return AllocationCurve.from_arrays(arrays, kind)


def _compute_allocation_curve(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    n: np.ndarray,
    t_flop: float,
    max_processors: float | None,
    integer: bool,
) -> AllocationCurve:
    n2 = n * n
    a_min, a_max = _admissible_range_grid(n, n2, kind, max_processors)

    continuous: list[np.ndarray] = [a_min, a_max]
    if isinstance(machine, BusArchitecture):
        a_star = bus_optimal_area_curve(machine, stencil, kind, n, t_flop)
        inside = (a_min < a_star) & (a_star < a_max)
        # Outside the range the endpoints already cover it; a duplicate
        # of a_min keeps the stack rectangular without moving the argmin.
        continuous.append(np.where(inside, a_star, a_min))
    elif not machine.monotone_in_processors:  # pragma: no cover - no such preset
        raise InvalidParameterError(
            "non-monotone non-bus machines need the scalar optimizer"
        )

    if integer:
        candidates: list[np.ndarray] = []
        for a in continuous:
            candidates.extend(
                _integer_candidate_slots(n, n2, kind, a, a_min, a_max)
            )
    else:
        candidates = continuous

    times = np.stack(
        [
            machine.cycle_time_area_grid(stencil, t_flop, kind, n, a)
            for a in candidates
        ]
    )
    areas = np.stack(candidates)
    best_idx = np.argmin(times, axis=0)
    cols = np.arange(n.size)
    best_time = times[best_idx, cols]
    best_area = areas[best_idx, cols]

    serial = stencil.flops_per_point * n2 * t_flop
    one = serial <= best_time

    speedup = np.where(one, 1.0, serial / best_time)
    processors = np.where(one, 1.0, n2 / best_area)
    area = np.where(one, n2, best_area)
    cycle_time = np.where(one, serial, best_time)
    efficiency = np.where(one, 1.0, speedup / processors)
    # math.isclose semantics (not np.isclose, whose additive atol+rtol
    # envelope is wider), matching the scalar regime classification.
    at_cap = np.abs(best_area - a_min) <= np.maximum(
        1e-9 * np.maximum(np.abs(best_area), np.abs(a_min)), 1e-9
    )
    regime = tuple(np.where(one, "one", np.where(at_cap, "all", "interior")).tolist())
    return AllocationCurve(
        grid_sides=n.astype(int),
        processors=processors,
        area=area,
        cycle_time=cycle_time,
        speedup=speedup,
        efficiency=efficiency,
        regime=regime,
        kind=kind,
    )


# --------------------------------------------------------------------------
# Minimal problem sizes / maximum useful processors
# --------------------------------------------------------------------------


def _compute_max_useful(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    n_arr: np.ndarray,
    t_flop: float,
) -> np.ndarray:
    v = _volume_coefficient(machine, kind)
    k = perimeters_required(kind, stencil)
    et = stencil.flops_per_point * t_flop
    ratio = et * n_arr / (v * k * machine.b)
    if kind is PartitionKind.STRIP:
        return np.sqrt(ratio)
    return _libm_pow(ratio, 2.0 / 3.0)


def max_useful_processors_curve(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    cache: SweepCache | None = None,
) -> np.ndarray:
    """Vectorized :func:`repro.core.minimal_size.max_useful_processors`.

    ``N_max = sqrt(E·T·n / (v·k·b))`` for strips, the same ratio to the
    2/3 power for squares, broadcast over the grid-side axis.
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.max_useful_processors(machine, stencil, kind, grid_sides, t_flop)
    return graph_evaluate([node], cache=resolve_cache(cache))[0]["max_useful"]


def _compute_minimal_problem_size(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    p: np.ndarray,
    t_flop: float,
) -> np.ndarray:
    from repro.batch.curves import minimal_grid_side_curve

    k = perimeters_required(kind, stencil)
    side = minimal_grid_side_curve(
        machine, k, stencil.flops_per_point, t_flop, p, kind
    )
    return side * side


def minimal_problem_size_curve(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    n_processors: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    cache: SweepCache | None = None,
) -> np.ndarray:
    """Vectorized :func:`repro.core.minimal_size.minimal_problem_size`.

    ``n²_min`` over the processor-count axis (Figure 7's y-axis before
    the log), via the closed-form minimal grid side.
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.minimal_problem_size(
        machine, stencil, kind, n_processors, t_flop
    )
    return graph_evaluate([node], cache=resolve_cache(cache))[0]["n2_min"]


# --------------------------------------------------------------------------
# Crossovers
# --------------------------------------------------------------------------


def speedup_ratio_curve(
    machine_a: Architecture,
    machine_b: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    cache: SweepCache | None = None,
) -> np.ndarray:
    """Vectorized :func:`repro.core.crossover.speedup_ratio` (A/B > 1 ⇒ A wins)."""
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.speedup_ratio(
        machine_a, machine_b, stencil, kind, grid_sides, t_flop, max_processors
    )
    return graph_evaluate([node], cache=resolve_cache(cache))[0]


def strip_square_ratio_curve(
    machine: Architecture,
    stencil: Stencil,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    cache: SweepCache | None = None,
) -> np.ndarray:
    """Vectorized :func:`repro.core.crossover.strip_square_ratio` (< 1 ⇒ squares win)."""
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.strip_square_ratio(
        machine, stencil, grid_sides, t_flop, max_processors
    )
    return graph_evaluate([node], cache=resolve_cache(cache))[0]


def find_crossover_grid_size_batch(
    metric_curve: Callable[[np.ndarray], np.ndarray],
    threshold: float = 1.0,
    n_lo: int = 2,
    n_hi: int = 1 << 16,
    block: int = 64,
) -> CrossoverResult:
    """Batched :func:`repro.core.crossover.find_crossover_grid_size`.

    ``metric_curve`` evaluates the metric over an *array* of grid sides
    in one call; the search narrows by evaluating up to ``block``
    interior points per round instead of one bisection midpoint, so a
    full 16-bit range resolves in ~3 vectorized calls.  For a monotone
    metric the result is the same smallest ``n`` the scalar bisection
    finds, with bit-identical before/after values (the metric
    evaluations themselves are bit-identical).
    """
    if n_lo >= n_hi:
        raise InvalidParameterError("need n_lo < n_hi")
    if block < 1:
        raise InvalidParameterError("block must be >= 1")
    ends = metric_curve(np.array([n_lo, n_hi]))
    if ends[1] < threshold:
        raise InvalidParameterError(
            f"metric never reaches {threshold} up to n = {n_hi}"
        )
    if ends[0] >= threshold:
        return CrossoverResult(
            n=n_lo, value_before=math.nan, value_after=float(ends[0])
        )
    lo, hi = n_lo, n_hi
    while hi - lo > 1:
        interior = np.unique(
            np.round(np.linspace(lo, hi, min(block, hi - lo - 1) + 2)).astype(int)
        )
        interior = interior[(interior > lo) & (interior < hi)]
        if interior.size == 0:  # pragma: no cover - adjacent integers
            break
        vals = metric_curve(interior)
        above = np.nonzero(vals >= threshold)[0]
        if above.size:
            first = int(above[0])
            hi = int(interior[first])
            if first > 0:
                lo = int(interior[first - 1])
        else:
            lo = int(interior[-1])
    before, after = metric_curve(np.array([hi - 1, hi]))
    return CrossoverResult(n=hi, value_before=float(before), value_after=float(after))


# --------------------------------------------------------------------------
# Isoefficiency over a processor-count axis
# --------------------------------------------------------------------------


def grid_for_efficiency_curve(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    processor_counts: Sequence[int],
    target_efficiency: float,
    t_flop: float = DEFAULT_T_FLOP,
    n_max: int = 1 << 18,
    cache: SweepCache | None = None,
) -> np.ndarray:
    """Batched :func:`repro.core.isoefficiency.grid_for_efficiency`.

    Runs the scalar routine's exponential-growth-then-bisection search
    for *all* processor counts simultaneously: each round evaluates the
    efficiency predicate on the whole frontier of active midpoints in
    one ``cycle_time_area_grid`` call.  The predicate transcription is
    bit-identical, so each returned grid side matches the scalar search.
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.grid_for_efficiency(
        machine, stencil, kind, processor_counts, target_efficiency, t_flop, n_max
    )
    return graph_evaluate([node], cache=resolve_cache(cache))[0]["sides"]


def _compute_grid_for_efficiency(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    p_int: np.ndarray,
    target_efficiency: float,
    t_flop: float,
    n_max: int,
) -> np.ndarray:
    p = p_int.astype(float)

    def efficient(n_arr: np.ndarray, p_arr: np.ndarray) -> np.ndarray:
        n_f = n_arr.astype(float)
        n2 = n_f * n_f
        serial = stencil.flops_per_point * n2 * t_flop
        cycle = machine.cycle_time_area_grid(
            stencil, t_flop, kind, n_f, n2 / p_arr
        )
        return serial / cycle >= target_efficiency * p_arr

    # lo: the scalar loop's floor — at least 2, at least one strip row
    # per processor, and lo² ≥ P so the grid hosts one point each.
    lo = np.maximum(2, p_int) if kind is PartitionKind.STRIP else np.full_like(p_int, 2)
    root = np.ceil(np.sqrt(p)).astype(int)
    bad = root * root < p_int  # correctly-rounded sqrt makes this rare
    root[bad] += 1
    lo = np.maximum(lo, root)

    sides = np.zeros_like(p_int)
    eff_lo = efficient(lo, p)
    sides[eff_lo] = lo[eff_lo]

    # Exponential growth: double every still-inefficient hi below n_max,
    # one frontier evaluation per round (the scalar loop, batched).
    hi = lo.copy()
    growing = ~eff_lo
    while True:
        can = growing & (hi < n_max)
        if not np.any(can):
            break
        hi[can] *= 2
        idx = np.nonzero(can)[0]
        ok = efficient(hi[can], p[can])
        growing[idx[ok]] = False

    # Entries that ran out of headroom are unsatisfiable (their last
    # efficiency check came back False at hi ≥ n_max).
    if np.any(growing):
        raise InvalidParameterError(
            f"no grid up to {n_max} reaches efficiency {target_efficiency} "
            f"on {int(p_int[np.nonzero(growing)[0][0]])} processors"
        )

    # Bisection on every unreturned entry, one frontier per round.
    pending = sides == 0
    while True:
        gap = pending & (hi - lo > 1)
        if not np.any(gap):
            break
        mid = (lo + hi) // 2
        idx = np.nonzero(gap)[0]
        ok = efficient(mid[gap], p[gap])
        hi[idx[ok]] = mid[idx[ok]]
        lo[idx[~ok]] = mid[idx[~ok]]
    sides[pending] = hi[pending]
    return sides.astype(int)


def isoefficiency_exponent_grid(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    processor_counts: Sequence[int],
    target_efficiency: float = 0.5,
    t_flop: float = DEFAULT_T_FLOP,
    cache: SweepCache | None = None,
) -> IsoefficiencyFit:
    """Batched :func:`repro.core.isoefficiency.isoefficiency_exponent`.

    Same fitted exponent, same grid sides, computed with one batched
    efficiency search over the whole processor axis.
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    node = graph_nodes.isoefficiency_fit(
        machine, stencil, kind, processor_counts, target_efficiency, t_flop
    )
    return graph_evaluate([node], cache=resolve_cache(cache))[0]


# --------------------------------------------------------------------------
# Scaled speedup (machine grows with the problem)
# --------------------------------------------------------------------------


def scaled_speedup_hypercube_curve(
    machine: Hypercube,
    stencil: Stencil,
    t_flop: float,
    grid_sides: Sequence[int],
    points_per_processor: float,
) -> np.ndarray:
    """Vectorized :func:`repro.core.scaling.scaled_speedup_hypercube`.

    The cycle time is constant under fixed points per processor, so the
    whole curve is the serial-time axis over one scalar denominator.
    """
    if points_per_processor <= 0:
        raise InvalidParameterError("points_per_processor must be positive")
    side = math.sqrt(points_per_processor)
    k = stencil.reach  # square partitions
    per_event = machine.message_time(k * side)
    cycle = stencil.flops_per_point * points_per_processor * t_flop + 8.0 * float(
        per_event
    )
    n = np.asarray(grid_sides, dtype=float)
    serial = stencil.flops_per_point * n * n * t_flop
    return serial / cycle


def scaled_speedup_banyan_curve(
    machine: BanyanNetwork,
    stencil: Stencil,
    t_flop: float,
    grid_sides: Sequence[int],
    points_per_processor: float,
) -> np.ndarray:
    """Vectorized :func:`repro.core.scaling.scaled_speedup_banyan`.

    The ``log2 N`` read term goes through libm so each element matches
    the scalar path bit for bit.
    """
    if points_per_processor <= 0:
        raise InvalidParameterError("points_per_processor must be positive")
    n = np.asarray(grid_sides, dtype=float)
    processors = n * n / points_per_processor
    if np.any(processors < 1):
        raise InvalidParameterError("grid smaller than one processor's share")
    side = math.sqrt(points_per_processor)
    k = stencil.reach
    log_term = np.maximum(_libm_log2(processors), 0.0)
    cycle = 8.0 * k * side * machine.w * log_term + (
        stencil.flops_per_point * points_per_processor * t_flop
    )
    serial = stencil.flops_per_point * n * n * t_flop
    return serial / cycle


# --------------------------------------------------------------------------
# Cached sweep front-end
# --------------------------------------------------------------------------


def cached_run_sweep(
    spec: SweepSpec, cache: SweepCache | None = None
) -> SweepResult:
    """:func:`repro.batch.run_sweep` through the content-addressed cache.

    The whole spec — axes, machines, stencil, partition kind, flop time
    — feeds the fingerprint, so any change recomputes and any repeat is
    served from memory or disk.
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    arrays = graph_evaluate([graph_nodes.sweep(spec)], cache=resolve_cache(cache))[0]
    return SweepResult(
        spec=spec, cycle_times={k: np.asarray(v) for k, v in arrays.items()}
    )
