"""repro.batch — batched sweep engine over (N, P, machine, stencil) grids.

Everything the paper plots is a curve family over problem size ``n``,
processor count ``P``, and architecture.  This package evaluates those
families *densely and vectorized*: one NumPy-broadcast call per machine
instead of a Python loop per point, which is 10–100× faster on the
grids the experiments sweep and is the substrate future scaling PRs
(result caching, sharded sweeps, new workloads) build on.

Usage::

    import numpy as np
    from repro.batch import SweepSpec, run_sweep

    # Cycle time / speedup / efficiency surfaces for the whole catalog
    # over a dense (N, P) grid — one vectorized call per machine.
    spec = SweepSpec.across_catalog(
        grid_sides=[128, 256, 512, 1024],
        processors=np.arange(1, 257),
    )
    result = run_sweep(spec)
    s = result.speedup("paper-bus")        # shape (4, 256)
    e = result.efficiency("butterfly")     # S(n, P) / P
    best_p = np.argmax(s, axis=1) + 1      # optimal P per grid side

    # Vectorized closed forms the experiments consume directly:
    from repro.batch import optimal_speedup_curve
    from repro.machines.catalog import PAPER_BUS
    from repro.stencils.library import FIVE_POINT
    from repro.stencils.perimeter import PartitionKind

    curve = optimal_speedup_curve(
        PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [256, 1024, 4096]
    )
    curve.speedup      # == optimal_speedup(...) per n, bit for bit

The same example lives runnable in ``examples/quickstart.py``.

Design contract
---------------
Batched results match the scalar ``core``/``machines`` paths **bit for
bit**: the vectorized code transcribes the same floating-point
operations in the same order, so experiments rewired onto this engine
emit numerically identical CSV artifacts.  ``tests/batch`` enforces the
equivalence on randomized (n, P, architecture) grids.
"""

from repro.batch.curves import (
    OptimalSpeedupCurve,
    RectangleErrorCurve,
    bus_optimal_area_curve,
    closed_form_optimal_speedup_async_bus_curve,
    closed_form_optimal_speedup_sync_bus_curve,
    k_matrix,
    minimal_grid_side_curve,
    optimal_speedup_curve,
    rectangle_error_curves,
    table1_speedup_curve,
    uses_all_processors_curve,
)
from repro.batch.engine import SweepSpec, SweepResult, run_sweep
from repro.batch.analysis import (
    AllocationCurve,
    cached_run_sweep,
    find_crossover_grid_size_batch,
    grid_for_efficiency_curve,
    isoefficiency_exponent_grid,
    max_useful_processors_curve,
    minimal_problem_size_curve,
    optimal_allocation_curve,
    scaled_speedup_banyan_curve,
    scaled_speedup_hypercube_curve,
    speedup_ratio_curve,
    strip_square_ratio_curve,
)
from repro.batch.cache import (
    CacheStats,
    SweepCache,
    clear_default_cache,
    configure_default_cache,
    default_cache,
    fingerprint,
)
from repro.batch.shard import (
    axis_chunks,
    run_sweep_sharded,
    sharded_allocation_arrays,
    sharded_allocation_curve,
)
from repro.batch.sim import (
    ReplicaBatchResult,
    ReplicaBatchSpec,
    machine_sim_tag,
    replica_request,
    simulate_replicas,
    simulate_replicas_cached,
)

# The analysis shims bind repro.graph lazily per call to keep the
# module graph acyclic (graph.nodes imports repro.batch.cache).  Load
# it eagerly here — cache/engine/analysis are fully defined by now —
# so the first curve call doesn't pay the graph's import cost inside a
# caller's timed region.  When repro.graph itself started the import
# chain, it is already (partially) in sys.modules and this is a no-op.
import repro.graph  # noqa: E402,F401  (eager: first-call latency)

__all__ = [
    "AllocationCurve",
    "CacheStats",
    "OptimalSpeedupCurve",
    "RectangleErrorCurve",
    "ReplicaBatchResult",
    "ReplicaBatchSpec",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "axis_chunks",
    "bus_optimal_area_curve",
    "closed_form_optimal_speedup_async_bus_curve",
    "closed_form_optimal_speedup_sync_bus_curve",
    "uses_all_processors_curve",
    "cached_run_sweep",
    "clear_default_cache",
    "configure_default_cache",
    "default_cache",
    "find_crossover_grid_size_batch",
    "fingerprint",
    "grid_for_efficiency_curve",
    "isoefficiency_exponent_grid",
    "k_matrix",
    "machine_sim_tag",
    "max_useful_processors_curve",
    "minimal_grid_side_curve",
    "minimal_problem_size_curve",
    "optimal_allocation_curve",
    "optimal_speedup_curve",
    "rectangle_error_curves",
    "replica_request",
    "run_sweep",
    "run_sweep_sharded",
    "sharded_allocation_arrays",
    "scaled_speedup_banyan_curve",
    "scaled_speedup_hypercube_curve",
    "sharded_allocation_curve",
    "simulate_replicas",
    "simulate_replicas_cached",
    "speedup_ratio_curve",
    "strip_square_ratio_curve",
    "table1_speedup_curve",
]
