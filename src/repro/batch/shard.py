"""Sharded evaluation: chunk large axes across a process pool.

The vectorized analysis layer turns a 2000-point sweep into a few NumPy
reductions, but one process still owns all of it.  For axes large
enough to amortize process startup, these helpers split the grid-side
axis into contiguous chunks, evaluate each chunk in a
``ProcessPoolExecutor`` worker (the same pool machinery the experiment
runner uses), and concatenate the results in order.

Every element of a curve depends only on its own axis value, so
sharding is exact: ``sharded_allocation_curve(...)`` returns the same
arrays as :func:`repro.batch.analysis.optimal_allocation_curve`, bit
for bit, for any chunking.  Combined with the content-addressed cache
this is the sweep *service*: fingerprint the request, serve a warm hit
from the store, or fan the cold miss out across all cores.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from repro.batch.analysis import (
    AllocationCurve,
    _allocation_request,
    _compute_allocation_curve,
    optimal_allocation_curve,
)
from repro.batch.cache import SweepCache, resolve_cache
from repro.batch.engine import SweepResult, SweepSpec, run_sweep
from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = [
    "axis_chunks",
    "sharded_allocation_arrays",
    "sharded_allocation_curve",
    "run_sweep_sharded",
]

#: Below this many axis points a chunk is not worth a process round-trip.
MIN_CHUNK = 64


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    return jobs


def axis_chunks(n_points: int, jobs: int, min_chunk: int = MIN_CHUNK) -> list[slice]:
    """Contiguous slices covering ``range(n_points)`` for ``jobs`` workers.

    At most ``jobs`` chunks, each at least ``min_chunk`` points (except
    possibly the last), so tiny axes collapse to one chunk and skip the
    pool entirely.
    """
    if n_points <= 0:
        raise InvalidParameterError("axis must have at least one point")
    n_chunks = max(1, min(jobs, n_points // max(min_chunk, 1)))
    bounds = np.linspace(0, n_points, n_chunks + 1).astype(int)
    return [
        slice(int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_chunks)
        if bounds[i + 1] > bounds[i]
    ]


def _allocation_chunk(payload: tuple) -> dict[str, np.ndarray]:
    """Worker body (module-level so the pool can pickle it)."""
    machine, stencil, kind, sides, t_flop, max_processors, integer = payload
    curve = _compute_allocation_curve(
        machine,
        stencil,
        kind,
        np.asarray(sides, dtype=float),
        t_flop,
        max_processors,
        integer,
    )
    return curve.to_arrays()


def sharded_allocation_arrays(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    integer: bool = False,
    jobs: int | None = None,
) -> dict[str, np.ndarray]:
    """Raw fan-out: the allocation-curve arrays, sharded, *uncached*.

    The compute body shared by :func:`sharded_allocation_curve` and the
    sweep service's micro-batcher.  The batcher evaluates a merged axis
    for several coalesced requests and stores only the per-request
    slices, so it needs the fan-out without a whole-axis cache entry —
    keeping the store deduplicated at request granularity.
    """
    jobs = _resolve_jobs(jobs)
    sides = np.asarray(grid_sides, dtype=float)
    if sides.ndim != 1 or sides.size == 0:
        raise InvalidParameterError("grid_sides must be a non-empty 1-D axis")
    chunks = axis_chunks(int(sides.size), jobs)
    if len(chunks) == 1:
        return _compute_allocation_curve(
            machine, stencil, kind, sides, t_flop, max_processors, integer
        ).to_arrays()
    payloads = [
        (machine, stencil, kind, sides[sl], t_flop, max_processors, integer)
        for sl in chunks
    ]
    with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
        parts = list(pool.map(_allocation_chunk, payloads))
    return {
        name: np.concatenate([part[name] for part in parts]) for name in parts[0]
    }


def sharded_allocation_curve(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    integer: bool = False,
    jobs: int | None = None,
    cache: SweepCache | None = None,
) -> AllocationCurve:
    """:func:`optimal_allocation_curve` with the n-axis sharded over cores.

    The cache (when configured) is consulted for the *whole* request
    before any work is sharded, and the assembled result is stored back
    under the same fingerprint — so a warm repeat costs one lookup
    regardless of ``jobs``.
    """
    jobs = _resolve_jobs(jobs)
    sides = np.asarray(grid_sides, dtype=float)
    if sides.ndim != 1 or sides.size == 0:
        raise InvalidParameterError("grid_sides must be a non-empty 1-D axis")
    chunks = axis_chunks(int(sides.size), jobs)
    if len(chunks) == 1:
        return optimal_allocation_curve(
            machine,
            stencil,
            kind,
            grid_sides,
            t_flop,
            max_processors,
            integer,
            cache=cache,
        )

    def compute() -> dict[str, np.ndarray]:
        return sharded_allocation_arrays(
            machine, stencil, kind, sides, t_flop, max_processors, integer, jobs
        )

    store = resolve_cache(cache)
    if store is None:
        return AllocationCurve.from_arrays(compute(), kind)
    request = _allocation_request(
        machine, stencil, kind, sides, t_flop, max_processors, integer
    )
    return AllocationCurve.from_arrays(store.get_or_compute(request, compute), kind)


def _sweep_chunk(spec: SweepSpec) -> dict[str, np.ndarray]:
    """Worker body for :func:`run_sweep_sharded`."""
    return dict(run_sweep(spec).cycle_times)


def run_sweep_sharded(
    spec: SweepSpec, jobs: int | None = None, cache: SweepCache | None = None
) -> SweepResult:
    """:func:`repro.batch.run_sweep` with the grid-side axis sharded.

    Each worker evaluates a contiguous slice of ``spec.grid_sides`` for
    every machine; the surfaces are re-stacked in axis order, so the
    result equals the unsharded sweep exactly.
    """
    jobs = _resolve_jobs(jobs)
    chunks = axis_chunks(len(spec.grid_sides), jobs)
    store = resolve_cache(cache)
    if len(chunks) == 1:
        if store is None:
            return run_sweep(spec)
        from repro.batch.analysis import cached_run_sweep

        return cached_run_sweep(spec, store)

    def compute() -> dict[str, np.ndarray]:
        subspecs = [
            SweepSpec(
                grid_sides=spec.grid_sides[sl],
                processors=spec.processors,
                machines=spec.machines,
                stencil=spec.stencil,
                kind=spec.kind,
                t_flop=spec.t_flop,
            )
            for sl in chunks
        ]
        with ProcessPoolExecutor(max_workers=len(subspecs)) as pool:
            parts = list(pool.map(_sweep_chunk, subspecs))
        return {
            name: np.concatenate([part[name] for part in parts], axis=0)
            for name in parts[0]
        }

    if store is None:
        surfaces = compute()
    else:
        surfaces = store.get_or_compute(("run_sweep", spec), compute)
    return SweepResult(
        spec=spec, cycle_times={k: np.asarray(v) for k, v in surfaces.items()}
    )
