"""Vectorized closed-form curves: the experiments' per-point loops, batched.

Each function here replaces a hand-rolled Python loop in an experiment
with one broadcast evaluation, while reproducing the scalar path's
floating-point results *exactly* (same operations, same order).  The
figure/table experiments consume these; ``tests/batch`` pins the
scalar equivalence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.bus import AsynchronousBus, BusArchitecture, SynchronousBus
from repro.partitioning.rectangles import (
    DEFAULT_PERIMETER_TOLERANCE,
    working_rectangles,
)
from repro.stencils.perimeter import PartitionKind, perimeters_required
from repro.stencils.stencil import Stencil

__all__ = [
    "OptimalSpeedupCurve",
    "optimal_speedup_curve",
    "bus_optimal_area_curve",
    "closed_form_optimal_speedup_sync_bus_curve",
    "closed_form_optimal_speedup_async_bus_curve",
    "uses_all_processors_curve",
    "minimal_grid_side_curve",
    "table1_speedup_curve",
    "k_matrix",
    "RectangleErrorCurve",
    "rectangle_error_curves",
]


def _libm_pow(values: np.ndarray, exponent: float) -> np.ndarray:  # lint: disable=vectorization-guard -- deliberate scalar loop: the bit-equality contract needs libm pow (math.pow); np.power may differ by 1 ULP on fractional exponents
    """Elementwise ``x ** exponent`` through libm, not NumPy's SIMD pow.

    NumPy's vectorized ``power`` can differ from libm's by 1 ULP on
    fractional exponents, while the scalar closed forms use Python's
    ``**`` (libm).  The curves promise bit-identical artifacts, so the
    handful of fractional powers on these small 1-D axes go through
    libm; the dense (N, P) surfaces only ever need ``sqrt``/``log2``,
    which are correctly rounded in both paths.
    """
    arr = np.asarray(values, dtype=float)
    out = np.array([math.pow(v, exponent) for v in arr.ravel()])
    return out.reshape(arr.shape)


# --------------------------------------------------------------------------
# Optimal allocation / speedup over a grid-side sweep
# --------------------------------------------------------------------------


def bus_optimal_area_curve(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
) -> np.ndarray:
    """Unconstrained continuous optimal partition areas, vectorized over n.

    Transcribes :meth:`SynchronousBus.optimal_area` /
    :meth:`AsynchronousBus.optimal_area` with ``n`` as an array.  Cases
    without a broadcastable closed form — the synchronous square cubic
    with ``c ≠ 0``, and bus subclasses with their own optima (e.g. the
    fully asynchronous extension) — fall back to the machine's scalar
    ``optimal_area`` per element, so every bus the scalar optimizer
    handles works here too.
    """
    n = np.asarray(grid_sides, dtype=float)
    et = stencil.flops_per_point * t_flop
    # Exact-type checks: a subclass may override optimal_area, in which
    # case the parent's closed form would silently be wrong for it.
    if type(machine) is AsynchronousBus:
        if kind is PartitionKind.STRIP:
            k = stencil.reach_rows
            coeff = 2.0 * k * machine.b * (n * n * n)
            return np.sqrt(coeff / et)
        k = stencil.reach
        side = _libm_pow(4.0 * k * machine.b * n**2 / et, 1.0 / 3.0)
        # The scalar path squares the side with ``**`` (libm pow), which
        # can land 1 ULP from the rounded product NumPy's ``**2``
        # computes — the transcription must follow libm.
        return _libm_pow(side, 2.0)
    if type(machine) is SynchronousBus:
        v = 2.0 * (2 if machine.volume_mode == "read_write" else 1)
        if kind is PartitionKind.STRIP:
            k = stencil.reach_rows
            coeff = v * k * machine.b * (n * n * n)
            return np.sqrt(coeff / et)
        k = stencil.reach
        if machine.c == 0.0:
            side = _libm_pow(v * k * machine.b * n**2 / et, 1.0 / 3.0)
            return _libm_pow(side, 2.0)  # libm squaring; see the async case
    if isinstance(machine, BusArchitecture):
        from repro.core.parameters import Workload

        return np.array(
            [  # lint: disable=vectorization-guard -- deliberate scalar fallback: bus subclasses with bespoke optimal_area overrides have no broadcast closed form; per-element scalar calls are the bit-equality contract
                machine.optimal_area(
                    Workload(n=int(nn), stencil=stencil, t_flop=t_flop), kind
                )
                for nn in n
            ]
        )
    raise InvalidParameterError(
        f"no closed-form optimal area for {type(machine).__name__}"
    )


@dataclass(frozen=True)
class OptimalSpeedupCurve:
    """Optimal-allocation arrays over a grid-side sweep.

    Element ``i`` equals the scalar
    :func:`repro.core.speedup.optimal_speedup` at ``grid_sides[i]``
    bit for bit.
    """

    grid_sides: np.ndarray
    speedup: np.ndarray
    processors: np.ndarray
    area: np.ndarray
    cycle_time: np.ndarray
    regime: tuple[str, ...]


def optimal_speedup_curve(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
) -> OptimalSpeedupCurve:
    """Vectorized :func:`repro.core.speedup.optimal_speedup` over ``n``.

    Evaluates every candidate area (range endpoints plus the bus interior
    optimum) across the whole sweep in stacked broadcast calls, then
    selects per grid side with the scalar optimizer's exact tie-breaking
    (first strict minimum; serial run wins ties).
    """
    n = np.asarray(grid_sides, dtype=float)
    if np.any(n < 1):
        raise InvalidParameterError("grid sides must be >= 1")
    n2 = n * n
    a_min = n.copy() if kind is PartitionKind.STRIP else np.ones_like(n)
    if max_processors is not None:
        if max_processors < 1:
            raise InvalidParameterError("max_processors must be >= 1")
        a_min = np.maximum(a_min, n2 / max_processors)
    a_min = np.minimum(a_min, n2)
    a_max = n2

    candidates = [a_min, a_max]
    if isinstance(machine, BusArchitecture):
        a_star = bus_optimal_area_curve(machine, stencil, kind, grid_sides, t_flop)
        inside = (a_min < a_star) & (a_star < a_max)
        # Outside the range the endpoint candidates already cover it; a
        # duplicate of a_min keeps the stack rectangular without
        # changing the argmin (first occurrence wins).
        candidates.append(np.where(inside, a_star, a_min))
    elif not machine.monotone_in_processors:  # pragma: no cover - no such preset
        raise InvalidParameterError(
            "non-monotone non-bus machines need the scalar optimizer"
        )

    times = np.stack(
        [
            machine.cycle_time_area_grid(stencil, t_flop, kind, n, a)
            for a in candidates
        ]
    )
    areas = np.stack(candidates)
    best_idx = np.argmin(times, axis=0)
    cols = np.arange(n.size)
    best_time = times[best_idx, cols]
    best_area = areas[best_idx, cols]

    serial = stencil.flops_per_point * n2 * t_flop
    one = serial <= best_time

    speedup = np.where(one, 1.0, serial / best_time)
    processors = np.where(one, 1.0, n2 / best_area)
    area = np.where(one, n2, best_area)
    cycle_time = np.where(one, serial, best_time)
    # math.isclose semantics (not np.isclose, whose additive atol+rtol
    # envelope is wider), so the regime labels match the scalar
    # optimizer's classification exactly.
    at_cap = np.abs(best_area - a_min) <= np.maximum(
        1e-9 * np.maximum(np.abs(best_area), np.abs(a_min)), 1e-9
    )
    regime = tuple(np.where(one, "one", np.where(at_cap, "all", "interior")).tolist())
    return OptimalSpeedupCurve(
        grid_sides=n.astype(int),
        speedup=speedup,
        processors=processors,
        area=area,
        cycle_time=cycle_time,
        regime=regime,
    )


def table1_speedup_curve(
    machine: Architecture,
    stencil: Stencil,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
) -> np.ndarray:
    """Vectorized :func:`repro.core.scaling.table1_optimal_speedup`.

    Buses take their interior optimum; monotone machines run one point
    per processor (Table I's convention), all over square partitions.
    """
    if isinstance(machine, BusArchitecture):
        return optimal_speedup_curve(
            machine, stencil, PartitionKind.SQUARE, grid_sides, t_flop
        ).speedup
    n = np.asarray(grid_sides, dtype=float)
    n2 = n * n
    serial = stencil.flops_per_point * n2 * t_flop
    cycle = machine.cycle_time_area_grid(
        stencil, t_flop, PartitionKind.SQUARE, n, np.ones_like(n)
    )
    return serial / cycle


# --------------------------------------------------------------------------
# Section-6 closed-form bus speedups and the all-processors test
# --------------------------------------------------------------------------


def closed_form_optimal_speedup_sync_bus_curve(
    machine: SynchronousBus,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
) -> np.ndarray:
    """Vectorized :func:`repro.core.speedup.closed_form_optimal_speedup_sync_bus`.

    Same operations in the same order as the scalar closed form, with
    the fractional powers routed through libm (:func:`_libm_pow`) so the
    transcription stays bit-identical per grid side.
    """
    n = np.asarray(grid_sides, dtype=float)
    if np.any(n < 1):
        raise InvalidParameterError("grid sides must be >= 1")
    n2 = n * n
    n3 = n2 * n  # exact for n³ < 2^53, matching the scalar int n**3
    et = stencil.flops_per_point * t_flop
    serial = stencil.flops_per_point * n2 * t_flop
    k = perimeters_required(kind, stencil)
    v = 2.0 * (2 if machine.volume_mode == "read_write" else 1)
    if kind is PartitionKind.STRIP:
        t_star = 2.0 * np.sqrt(et * v * k * machine.b * n3) + v * k * machine.c * n
        return serial / t_star
    if machine.c != 0.0:
        raise InvalidParameterError(
            "closed-form square optimal speedup requires c = 0; "
            "use optimal_speedup() for the general case"
        )
    t_star = 3.0 * et ** (1.0 / 3.0) * _libm_pow(v * k * machine.b * n2, 2.0 / 3.0)
    return serial / t_star


def closed_form_optimal_speedup_async_bus_curve(
    machine: AsynchronousBus,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
) -> np.ndarray:
    """Vectorized :func:`repro.core.speedup.closed_form_optimal_speedup_async_bus`.

    The optimal side ``ŝ`` and both ``t*`` expressions follow the scalar
    transcription exactly; ``ŝ²`` goes through libm because the scalar
    path squares with Python's ``**``.
    """
    n = np.asarray(grid_sides, dtype=float)
    if np.any(n < 1):
        raise InvalidParameterError("grid sides must be >= 1")
    n2 = n * n
    n3 = n2 * n  # exact for n³ < 2^53, matching the scalar int n**3
    et = stencil.flops_per_point * t_flop
    serial = stencil.flops_per_point * n2 * t_flop
    k = perimeters_required(kind, stencil)
    if kind is PartitionKind.STRIP:
        t_star = (
            2.0 * np.sqrt(2.0 * k * machine.b * et * n3) + 2.0 * k * machine.c * n
        )
        return serial / t_star
    s_hat = _libm_pow(4.0 * k * machine.b * n2 / et, 1.0 / 3.0)
    t_star = 2.0 * et * _libm_pow(s_hat, 2.0) + 4.0 * k * machine.c * s_hat
    return serial / t_star


def uses_all_processors_curve(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    n_processors: int,
    t_flop: float = DEFAULT_T_FLOP,
) -> np.ndarray:
    """Vectorized :func:`repro.core.minimal_size.uses_all_processors`.

    Inequalities (4)/(6) over the grid-side axis: element ``i`` is True
    iff the continuous optimal area at ``grid_sides[i]`` is at most
    ``n²/N`` — the same comparison the scalar test makes, with the
    optimal areas from :func:`bus_optimal_area_curve`.
    """
    if n_processors < 1:
        raise InvalidParameterError("n_processors must be >= 1")
    n = np.asarray(grid_sides, dtype=float)
    if np.any(n < 1):
        raise InvalidParameterError("grid sides must be >= 1")
    optimal = bus_optimal_area_curve(machine, stencil, kind, grid_sides, t_flop)
    return optimal <= (n * n) / float(n_processors)


# --------------------------------------------------------------------------
# Figure-7 minimal problem sizes
# --------------------------------------------------------------------------


def minimal_grid_side_curve(
    machine: BusArchitecture,
    stencil_k: int,
    flops_per_point: float,
    t_flop: float,
    n_processors: Sequence[int],
    kind: PartitionKind,
) -> np.ndarray:
    """Vectorized :func:`repro.core.minimal_size.minimal_grid_side`.

    ``n_min = v·k·b·N² / (E·T_fp)`` (strips) or ``∝ N^(3/2)`` (squares),
    broadcast over the processor-count axis.
    """
    from repro.core.minimal_size import _volume_coefficient

    p = np.asarray(n_processors, dtype=float)
    if np.any(p < 1):
        raise InvalidParameterError("n_processors must be >= 1")
    v = _volume_coefficient(machine, kind)
    et = flops_per_point * t_flop
    if kind is PartitionKind.STRIP:
        return v * stencil_k * machine.b * p**2 / et
    return v * stencil_k * machine.b * _libm_pow(p, 1.5) / et


# --------------------------------------------------------------------------
# The k(P, S) classification, batched over the stencil library
# --------------------------------------------------------------------------


def k_matrix(
    stencils: Sequence[Stencil],
    kinds: Sequence[PartitionKind] = (PartitionKind.STRIP, PartitionKind.SQUARE),
) -> np.ndarray:
    """``k(P, S)`` for all (stencil, partition) pairs in one shot.

    Shape ``(len(stencils), len(kinds))``; strips read the row reach,
    squares the Chebyshev reach — the Section-3 rule as column selects
    over the stencil library's reach vectors.
    """
    reach_rows = np.array([s.reach_rows for s in stencils], dtype=int)
    reach = np.array([s.reach for s in stencils], dtype=int)
    columns = [
        reach_rows if kind is PartitionKind.STRIP else reach for kind in kinds
    ]
    return np.stack(columns, axis=1)


# --------------------------------------------------------------------------
# Figure-6 working-rectangle error series
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RectangleErrorCurve:
    """Figure-6 error series as parallel arrays over the target areas."""

    target_areas: np.ndarray
    heights: np.ndarray
    widths: np.ndarray
    area_errors: np.ndarray
    perimeter_errors: np.ndarray

    def __len__(self) -> int:
        return int(self.target_areas.size)


def rectangle_error_curves(
    n: int,
    areas: Sequence[int],
    tolerance: float = DEFAULT_PERIMETER_TOLERANCE,
) -> RectangleErrorCurve:
    """Vectorized :func:`repro.partitioning.rectangles.approximation_errors`.

    The working set is sorted and unique per area, so the closest
    rectangle for every target is found with one ``searchsorted`` over
    the whole sweep; ties prefer the smaller area, matching the scalar
    selection rule.
    """
    rects = working_rectangles(n, tolerance)
    r_area = np.array([r.area for r in rects], dtype=float)
    r_height = np.array([r.height for r in rects], dtype=int)
    r_width = np.array([r.width for r in rects], dtype=int)
    r_perimeter = np.array([r.perimeter for r in rects], dtype=float)

    targets = np.asarray(list(areas), dtype=int)
    t = targets.astype(float)
    idx = np.searchsorted(r_area, t)
    left = np.clip(idx - 1, 0, r_area.size - 1)
    right = np.clip(idx, 0, r_area.size - 1)
    d_left = np.abs(r_area[left] - t)
    d_right = np.abs(r_area[right] - t)
    pick = np.where(d_left <= d_right, left, right)

    ideal_perimeter = 4.0 * _libm_pow(t, 0.5)
    return RectangleErrorCurve(
        target_areas=targets,
        heights=r_height[pick],
        widths=r_width[pick],
        area_errors=np.abs(r_area[pick] - t) / t,
        perimeter_errors=np.abs(r_perimeter[pick] - ideal_perimeter) / ideal_perimeter,
    )
