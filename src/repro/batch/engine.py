"""The batched sweep engine: dense (N, P, machine) grids in one call.

The paper's artifacts are families of curves — cycle time, speedup,
efficiency — over problem size ``n`` and processor count ``P`` across a
machine catalog.  :class:`SweepSpec` names such a family; ``run_sweep``
evaluates the whole family through the machines' vectorized grid API
(:meth:`repro.machines.base.Architecture.cycle_time_grid`) with one
NumPy-broadcast call per machine, and :class:`SweepResult` holds the
dense arrays plus derived speedup/efficiency surfaces.

Scalar-equivalence contract: every cell of a sweep equals the scalar
path (``Workload`` + ``Architecture.cycle_time``) bit for bit — the
grid methods transcribe the same floating-point operations in the same
order.  ``tests/batch/`` enforces this on randomized grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.catalog import DEFAULT_MACHINES, by_name
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = ["SweepSpec", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """A dense (grid side × processor count × machine) evaluation grid.

    Attributes
    ----------
    grid_sides:
        Problem sizes ``n`` (the grid is ``n × n``), the sweep's first
        axis.
    processors:
        Processor counts ``P``, the second axis.  ``P = 1`` rows map to
        the serial time.
    machines:
        Ordered ``(name, machine)`` pairs — the catalog slice to sweep.
    stencil, kind, t_flop:
        Shared workload parameters.
    """

    grid_sides: tuple[int, ...]
    processors: tuple[float, ...]
    machines: tuple[tuple[str, Architecture], ...]
    stencil: Stencil = FIVE_POINT
    kind: PartitionKind = PartitionKind.SQUARE
    t_flop: float = DEFAULT_T_FLOP

    def __post_init__(self) -> None:
        if not self.grid_sides or not self.processors or not self.machines:
            raise InvalidParameterError(
                "a sweep needs at least one grid side, processor count, and machine"
            )
        if any(n < 1 for n in self.grid_sides):
            raise InvalidParameterError("grid sides must be >= 1")
        if any(p < 1 for p in self.processors):
            raise InvalidParameterError("processor counts must be >= 1")
        if self.t_flop <= 0:
            raise InvalidParameterError("t_flop must be positive")
        names = [name for name, _ in self.machines]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate machine names in sweep: {names}")

    @classmethod
    def across_catalog(
        cls,
        grid_sides: Sequence[int],
        processors: Sequence[float],
        machines: Mapping[str, Architecture] | Sequence[str] | None = None,
        stencil: Stencil = FIVE_POINT,
        kind: PartitionKind = PartitionKind.SQUARE,
        t_flop: float = DEFAULT_T_FLOP,
    ) -> "SweepSpec":
        """Spec over named catalog machines (default: the whole catalog)."""
        if machines is None:
            pairs = tuple(sorted(DEFAULT_MACHINES.items()))
        elif isinstance(machines, Mapping):
            pairs = tuple(machines.items())
        else:
            pairs = tuple((name, by_name(name)) for name in machines)
        return cls(
            grid_sides=tuple(int(n) for n in grid_sides),
            processors=tuple(float(p) for p in processors),
            machines=pairs,
            stencil=stencil,
            kind=kind,
            t_flop=t_flop,
        )

    @property
    def shape(self) -> tuple[int, int]:
        """(len(grid_sides), len(processors)) — one surface per machine."""
        return (len(self.grid_sides), len(self.processors))


@dataclass(frozen=True, eq=False)
class SweepResult:
    """Dense cycle-time surfaces plus derived speedup/efficiency.

    ``cycle_times[name]`` has :attr:`SweepSpec.shape` — rows follow
    ``spec.grid_sides``, columns ``spec.processors``.
    """

    spec: SweepSpec
    cycle_times: dict[str, np.ndarray] = field(repr=False)

    @property
    def machine_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.spec.machines)

    @property
    def serial_times(self) -> np.ndarray:
        """One-processor iteration time per grid side."""
        n = np.asarray(self.spec.grid_sides, dtype=float)
        return self.spec.stencil.flops_per_point * (n * n) * self.spec.t_flop

    def cycle_time(self, machine: str) -> np.ndarray:
        try:
            return self.cycle_times[machine]
        except KeyError:
            raise InvalidParameterError(
                f"sweep has no machine {machine!r}; machines: {list(self.machine_names)}"
            ) from None

    def speedup(self, machine: str) -> np.ndarray:
        """``S(n, P) = t_serial(n) / t_cycle(n, P)``."""
        return self.serial_times[:, None] / self.cycle_time(machine)

    def efficiency(self, machine: str) -> np.ndarray:
        """``S(n, P) / P``."""
        return self.speedup(machine) / np.asarray(self.spec.processors, dtype=float)

    def feasible(self) -> np.ndarray:
        """Partitions at least one strip row (or one point) per processor.

        The analytic formulas extend continuously below this floor, so
        infeasible cells still hold finite numbers; this mask lets
        consumers exclude them.
        """
        n = np.asarray(self.spec.grid_sides, dtype=float)[:, None]
        p = np.asarray(self.spec.processors, dtype=float)[None, :]
        cap = n if self.spec.kind is PartitionKind.STRIP else n * n
        return p <= cap

    def iter_rows(self) -> Iterator[tuple[object, ...]]:
        """Long-form rows: (machine, n, P, cycle time, speedup, efficiency)."""
        for name in self.machine_names:
            t = self.cycle_time(name)
            s = self.speedup(name)
            e = self.efficiency(name)
            for i, n in enumerate(self.spec.grid_sides):
                for j, p in enumerate(self.spec.processors):
                    yield (name, n, p, t[i, j].item(), s[i, j].item(), e[i, j].item())

    def headers(self) -> tuple[str, ...]:
        return ("machine", "n", "processors", "cycle time", "speedup", "efficiency")


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Evaluate the full (N, P) grid for every machine in the spec.

    One vectorized ``cycle_time_grid`` call per machine — no Python-level
    loop over grid cells anywhere.
    """
    n = np.asarray(spec.grid_sides, dtype=float)[:, None]
    p = np.asarray(spec.processors, dtype=float)[None, :]
    surfaces = {
        name: machine.cycle_time_grid(spec.stencil, spec.t_flop, spec.kind, n, p)
        for name, machine in spec.machines
    }
    return SweepResult(spec=spec, cycle_times=surfaces)
